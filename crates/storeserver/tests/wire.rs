//! Wire-level integration: TCP round trips, pipelining, typed errors,
//! and TCP/loopback parity.

use bytes::Bytes;
use std::sync::Arc;

use storeserver::proto::{Request, Response};
use storeserver::{StoreClient, StoreEngine, StoreError, StoreServer};

fn serve(shards: usize) -> (StoreServer, StoreClient) {
    let engine = Arc::new(StoreEngine::in_memory(shards));
    let server = StoreServer::start(engine, "127.0.0.1:0").expect("bind loopback");
    let client = StoreClient::connect(server.addr()).expect("connect");
    (server, client)
}

#[test]
fn full_op_set_round_trips_over_tcp() {
    let (server, mut c) = serve(8);
    c.ping().unwrap();
    assert!(c.put("rdf:new:{s1}:f0", &b"payload"[..]).unwrap());
    assert!(!c.put("rdf:new:{s1}:f0", &b"payload2"[..]).unwrap());
    assert_eq!(
        c.get("rdf:new:{s1}:f0").unwrap().unwrap().as_ref(),
        b"payload2"
    );
    assert!(c.exists("rdf:new:{s1}:f0").unwrap());
    c.rename("rdf:new:{s1}:f0", "rdf:done:{s1}:f0").unwrap();
    assert_eq!(c.keys("rdf:done:*").unwrap(), vec!["rdf:done:{s1}:f0"]);
    assert!(c.del("rdf:done:{s1}:f0").unwrap());
    assert!(!c.del("rdf:done:{s1}:f0").unwrap());
    assert!(c.get("rdf:done:{s1}:f0").unwrap().is_none());

    let pairs: Vec<(String, Bytes)> = (0..100)
        .map(|i| (format!("k:{{t{i}}}"), Bytes::from(vec![i as u8; 32])))
        .collect();
    assert_eq!(c.put_many(pairs.clone()).unwrap(), 100);
    let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
    let vals = c.get_many(keys.clone()).unwrap();
    assert_eq!(vals.len(), 100);
    assert!(vals.iter().all(Option::is_some));

    // Incremental scan agrees with KEYS.
    let mut scanned = Vec::new();
    let mut cursor = 0u64;
    loop {
        let (batch, next) = c.scan("k:*", cursor, 17).unwrap();
        scanned.extend(batch);
        match next {
            Some(n) => cursor = n,
            None => break,
        }
    }
    scanned.sort();
    let mut all = c.keys("k:*").unwrap();
    all.sort();
    assert_eq!(scanned, all);
    assert_eq!(scanned.len(), 100);

    let stats = c.stats().unwrap();
    assert_eq!(stats.shards, 8);
    assert_eq!(stats.keys, 100);
    assert_eq!(stats.memory_bytes, 100 * 32);

    assert_eq!(c.del_many(keys).unwrap(), 100);
    c.sync().unwrap();
    server.stop();
}

#[test]
fn typed_errors_cross_the_wire() {
    let (server, mut c) = serve(64);
    // Rename of a missing key: typed NoSuchKey, not a dropped connection.
    match c.rename("missing:{x}", "other:{x}") {
        Err(StoreError::NoSuchKey(k)) => assert_eq!(k, "missing:{x}"),
        other => panic!("wanted NoSuchKey, got {other:?}"),
    }
    // Cross-shard rename: the typed error arrives with both key names.
    let from = "alpha".to_string();
    let engine = Arc::clone(server.engine());
    let to = (0..10_000)
        .map(|i| format!("beta-{i}"))
        .find(|k| engine.cluster().shard_for(k) != engine.cluster().shard_for(&from))
        .expect("some key lands elsewhere");
    c.put(&from, &b"v"[..]).unwrap();
    match c.rename(&from, &to) {
        Err(StoreError::CrossShardRename { from: f, to: t }) => {
            assert_eq!(f, from);
            assert_eq!(t, to);
        }
        other => panic!("wanted CrossShardRename, got {other:?}"),
    }
    // The connection survives typed errors: the next op works.
    assert!(c.exists(&from).unwrap());
    server.stop();
}

#[test]
fn malformed_frames_bounce_without_killing_the_connection() {
    let (server, _c) = serve(4);
    use std::io::{BufReader, Write};
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // Unknown opcode 200 with an empty body.
    let mut frame = Vec::new();
    storeserver::proto::write_frame(&mut frame, 1, 200, &[]).unwrap();
    writer.write_all(&frame).unwrap();
    writer.flush().unwrap();
    let (seq, st, body) = storeserver::proto::read_frame(&mut reader)
        .unwrap()
        .unwrap();
    assert_eq!(seq, 1);
    assert!(matches!(
        Response::decode(st, &body).unwrap(),
        Response::Err(storeserver::WireError::BadRequest(_))
    ));
    // Connection still serves well-formed requests.
    writer.write_all(&Request::Ping.encode_frame(2)).unwrap();
    writer.flush().unwrap();
    let (seq, st, body) = storeserver::proto::read_frame(&mut reader)
        .unwrap()
        .unwrap();
    assert_eq!(seq, 2);
    assert_eq!(Response::decode(st, &body).unwrap(), Response::Unit);
    server.stop();
}

#[test]
fn pipelined_batch_matches_by_sequence_id() {
    let (server, mut c) = serve(8);
    let depth = 64;
    let reqs: Vec<Request> = (0..depth)
        .map(|i| Request::Put {
            key: format!("p:{{k{i}}}"),
            value: Bytes::from(vec![i as u8; 8]),
        })
        .collect();
    let resps = c.call_pipelined(&reqs).unwrap();
    assert_eq!(resps.len(), depth);
    assert!(resps.iter().all(|r| *r == Response::Bool(true)));

    // Mixed batch: reads come back positionally matched.
    let reqs: Vec<Request> = (0..depth)
        .map(|i| Request::Get {
            key: format!("p:{{k{i}}}"),
        })
        .collect();
    let resps = c.call_pipelined(&reqs).unwrap();
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(*r, Response::Value(Some(Bytes::from(vec![i as u8; 8]))));
    }
    server.stop();
}

#[test]
fn loopback_and_tcp_agree_on_every_op() {
    let engine_tcp = Arc::new(StoreEngine::in_memory(16));
    let server = StoreServer::start(Arc::clone(&engine_tcp), "127.0.0.1:0").unwrap();
    let mut tcp = StoreClient::connect(server.addr()).unwrap();
    let mut loopback = StoreClient::loopback(Arc::new(StoreEngine::in_memory(16)));

    let script: Vec<Request> = (0..50)
        .map(|i| Request::Put {
            key: format!("ns:{{k{i}}}"),
            value: Bytes::from(vec![i as u8; 10]),
        })
        .chain((0..25).map(|i| Request::Rename {
            from: format!("ns:{{k{i}}}"),
            to: format!("done:{{k{i}}}"),
        }))
        .chain(std::iter::once(Request::Keys {
            pattern: "done:*".into(),
        }))
        .chain((0..10).map(|i| Request::Del {
            key: format!("done:{{k{i}}}"),
        }))
        .chain(std::iter::once(Request::Rename {
            from: "ns:{k99}".into(),
            to: "done:{k99}".into(),
        }))
        .chain(std::iter::once(Request::Stats))
        .collect();
    for req in &script {
        let a = tcp.call(req).unwrap();
        let b = loopback.call(req).unwrap();
        assert_eq!(a, b, "transports diverged on {req:?}");
    }
    server.stop();
}
