//! Seeded chaos against the real transport: connections severed in the
//! ack window, WAL tails torn — the store-tier faults that used to be
//! simulated by injected errors, now pointed at the genuine articles.

use bytes::Bytes;
use std::path::PathBuf;
use std::sync::Arc;

use chaos::StoreChaosPlan;
use storeserver::wal::replay;
use storeserver::{DropSchedule, RetryClient, StoreClient, StoreEngine, StoreServer, SyncMode};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A reconnecting client survives seeded connection drops and the final
/// state equals a fault-free model run: no acked mutation lost, no
/// retried mutation double-applied in a way the model can detect.
#[test]
fn seeded_connection_drops_conserve_the_ledger() {
    // The script below issues ~296 ops before any retries, so spreading
    // the drop points over [1, 280) guarantees every drop fires before
    // the audit asserts.
    let ops_total = 280u64;
    let plan = StoreChaosPlan::generate(42, ops_total, 5, 8, 0);
    assert!(!plan.conn_drops.is_empty());
    // The plan round-trips through its text form — what a repro file
    // would carry.
    let plan = StoreChaosPlan::from_text(&plan.to_text()).unwrap();

    let engine = Arc::new(StoreEngine::in_memory(8));
    let server = StoreServer::start_with_drops(
        Arc::clone(&engine),
        "127.0.0.1:0",
        Some(DropSchedule::new(plan.conn_drops.iter().copied())),
    )
    .unwrap();

    // Model: the same script applied to a plain in-memory engine with
    // no faults.
    let model = Arc::new(StoreEngine::in_memory(8));
    let mut model_client = StoreClient::loopback(Arc::clone(&model));

    let mut c = RetryClient::connect(server.addr(), 8).unwrap();
    for i in 0..200u64 {
        let key = format!("rdf:new:{{s{i}}}:f0");
        let value = Bytes::from(vec![(i % 251) as u8; 32]);
        c.put(&key, value.clone()).unwrap();
        model_client.put(&key, value).unwrap();
        if i % 3 == 0 {
            let done = format!("rdf:done:{{s{i}}}:f0");
            c.rename(&key, &done).unwrap();
            model_client.rename(&key, &done).unwrap();
        }
        if i % 7 == 0 {
            let victim = format!("rdf:done:{{s{i}}}:f0");
            c.del(&victim).unwrap();
            model_client.del(&victim).unwrap();
        }
    }

    assert!(
        c.drops_seen >= plan.conn_drops.len() as u64,
        "survived {} drops, plan had {}",
        c.drops_seen,
        plan.conn_drops.len()
    );

    // Ledger audit: chaos state == model state, key for key, byte for
    // byte.
    let mut chaos_keys = c.keys("*").unwrap();
    chaos_keys.sort();
    let mut model_keys = model_client.keys("*").unwrap();
    model_keys.sort();
    assert_eq!(chaos_keys, model_keys, "key sets diverged under drops");
    for key in &model_keys {
        assert_eq!(
            c.get(key).unwrap(),
            model_client.get(key).unwrap(),
            "value diverged at {key}"
        );
    }
    server.stop();
}

/// Seeded WAL truncations: recovery replays the intact prefix of every
/// shard log and never errors on a torn tail.
#[test]
fn seeded_wal_truncations_recover_to_a_prefix() {
    let shards = 4usize;
    let plan = StoreChaosPlan::generate(7, 0, 0, shards, 3);
    assert!(!plan.wal_truncations.is_empty());

    let dir = tmpdir("truncate");
    {
        let engine = StoreEngine::open(&dir, shards, SyncMode::Virtual).unwrap();
        let mut c = StoreClient::loopback(Arc::new(engine));
        for i in 0..400 {
            c.put(&format!("ns:{{k{i}}}"), Bytes::from(vec![i as u8; 24]))
                .unwrap();
        }
    }

    // Record each shard's intact op sequence, then tear the tails.
    let full: Vec<Vec<storeserver::WalOp>> = (0..shards)
        .map(|i| replay(&dir.join(format!("shard-{i}.wal"))).unwrap().ops)
        .collect();
    for t in &plan.wal_truncations {
        let path = dir.join(format!("shard-{}.wal", t.shard % shards));
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(t.bytes as usize);
        std::fs::write(&path, &bytes[..keep]).unwrap();
    }

    // Replay each torn log: always a clean prefix of the full sequence.
    for (i, full_ops) in full.iter().enumerate().take(shards) {
        let rep = replay(&dir.join(format!("shard-{i}.wal"))).unwrap();
        assert!(rep.ops.len() <= full_ops.len());
        assert_eq!(
            rep.ops[..],
            full_ops[..rep.ops.len()],
            "shard {i} not a prefix"
        );
    }

    // And the engine recovers over the torn directory without error,
    // truncating tails so later appends are clean.
    let engine = StoreEngine::open(&dir, shards, SyncMode::Virtual).unwrap();
    let torn = engine.recovery().torn_bytes;
    assert!(
        torn > 0,
        "at least one truncation bit a record boundary asymmetrically or cut whole records"
    );
    let mut c = StoreClient::loopback(Arc::new(engine));
    c.put("post:{recovery}", Bytes::from_static(b"ok")).unwrap();
    drop(c);
    let reopened = StoreEngine::open(&dir, shards, SyncMode::Virtual).unwrap();
    assert_eq!(
        reopened.recovery().torn_bytes,
        0,
        "tails were cut on reopen"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
