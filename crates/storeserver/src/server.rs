//! The TCP front end: thread-per-connection, group-commit acks.
//!
//! Each connection drains request frames, executes them against the
//! shared [`StoreEngine`], and buffers the encoded responses. The
//! buffered responses are only released once [`StoreEngine::sync_dirty`]
//! has made the batch durable — so under pipelining one fsync covers a
//! whole burst of writes (group commit), and a response on the wire
//! always means the write survives a crash. A ping-pong client gets a
//! sync per op; a depth-64 pipeliner gets a sync per 64. That, not
//! protocol overhead, is where the pipelined speedup in
//! `BENCH_store.json` comes from on the durable path.
//!
//! Chaos hooks: a [`DropSchedule`] built from seeded global op indices
//! severs the connection *after* the victim op is applied and synced but
//! *before* its response is sent — the nastiest real-network window,
//! where the client cannot know whether the op landed and must resolve
//! the ambiguity on reconnect (see `RetryClient`).

use std::collections::BTreeSet;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering}; // lint: allow(L6: listener shutdown flag + chaos op counter; both are edge-side and off the replay path)
use std::sync::Arc;
use std::thread;

use crate::engine::StoreEngine;
use crate::proto::{read_frame, Request, Response, WireError};

/// Seeded connection-drop points on the server's global op counter.
#[derive(Debug, Default)]
pub struct DropSchedule {
    points: BTreeSet<u64>,
    counter: AtomicU64, // lint: allow(L6: chaos-only op counter; ordering across connections is the fault being injected, not simulated state)
}

impl DropSchedule {
    /// A schedule that severs the connection handling the `i`-th op for
    /// each `i` in `points`.
    pub fn new(points: impl IntoIterator<Item = u64>) -> DropSchedule {
        DropSchedule {
            points: points.into_iter().collect(),
            counter: AtomicU64::new(0), // lint: allow(L6: chaos-only op counter init; see the field's allow)
        }
    }

    /// Counts one op; true when this op's connection must drop.
    fn fires(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        self.points.contains(&n)
    }

    /// Ops counted so far.
    pub fn ops_seen(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }
}

/// A listening store server.
pub struct StoreServer {
    engine: Arc<StoreEngine>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>, // lint: allow(L6: accept-loop stop flag, same idiom as FarmServer)
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl StoreServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `engine`.
    pub fn start(engine: Arc<StoreEngine>, addr: &str) -> std::io::Result<StoreServer> {
        StoreServer::start_with_drops(engine, addr, None)
    }

    /// Same, with a chaos drop schedule.
    pub fn start_with_drops(
        engine: Arc<StoreEngine>,
        addr: &str,
        drops: Option<DropSchedule>,
    ) -> std::io::Result<StoreServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false)); // lint: allow(L6: accept-loop stop flag init; see the field's allow)
        let drops = drops.map(Arc::new);
        let accept_engine = Arc::clone(&engine);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let conn_engine = Arc::clone(&accept_engine);
                let conn_drops = drops.clone();
                thread::spawn(move || {
                    let _ = handle_connection(conn_engine, stream, conn_drops);
                });
            }
        });
        Ok(StoreServer {
            engine,
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<StoreEngine> {
        &self.engine
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// in flight finish their current batch.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the blocked accept
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks the calling thread until the accept loop exits — what the
    /// `storeserverd` daemon does after printing its address.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(
    engine: Arc<StoreEngine>,
    stream: TcpStream,
    drops: Option<Arc<DropSchedule>>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Responses accumulate here and are only written after the batch's
    // durability barrier; a BufWriter would leak unsynced acks when its
    // internal buffer overflows mid-batch.
    let mut out: Vec<u8> = Vec::new();
    const FLUSH_HIGH_WATER: usize = 4 * 1024 * 1024;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => {
                // Clean EOF: make straggling work durable, send what we
                // owe (best effort — the peer may be gone).
                engine.sync_dirty()?;
                let _ = writer.write_all(&out);
                return Ok(());
            }
            Err(e) => {
                engine.sync_dirty()?;
                return Err(e);
            }
        };
        let (seq, op, body) = frame;
        let chaos_drop = drops.as_ref().is_some_and(|d| d.fires());
        let resp = match Request::decode(op, &body) {
            Ok(req) => engine.handle(req),
            Err(e) => Response::Err(WireError::BadRequest(e)),
        };
        if chaos_drop {
            // Apply-then-drop: the op (and everything queued before it)
            // becomes durable, but no ack escapes — the client must
            // resolve the ambiguity after reconnecting.
            engine.sync_dirty()?;
            return Ok(());
        }
        out.extend_from_slice(&resp.encode_frame(seq));
        // Group commit: when the read buffer is drained the client is
        // waiting on us — sync once for the whole batch, then release
        // every buffered ack. A mid-batch high-water flush keeps memory
        // bounded and still syncs before sending.
        if reader.buffer().is_empty() || out.len() >= FLUSH_HIGH_WATER {
            engine.sync_dirty()?;
            writer.write_all(&out)?;
            writer.flush()?;
            out.clear();
        }
    }
}
