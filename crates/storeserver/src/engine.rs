//! The storage engine: a [`kvstore::Cluster`] fronted by per-shard WALs.
//!
//! The engine is transport-agnostic — the TCP server and the in-process
//! loopback transport both funnel decoded [`Request`]s through
//! [`StoreEngine::handle`], so the two paths cannot drift apart. Key
//! placement is exactly `kvstore`'s hash-tag routing: the engine holds a
//! zero-latency [`kvstore::Client`] and delegates reads/scans to it,
//! which keeps the ordered-scan and co-sharding contracts (and their
//! tests) shared with the in-process store.
//!
//! Durability discipline for mutations, per owning shard:
//!
//! 1. lock the shard's WAL handle,
//! 2. append the record (buffered),
//! 3. apply the mutation to the in-memory shard,
//! 4. unlock.
//!
//! Holding the WAL lock across the memory apply keeps log order and
//! memory order identical, so replay converges to the same state even
//! for racing writes to one key. The *ack* then waits for
//! [`StoreEngine::sync_dirty`], which the server calls once per drained
//! pipeline batch — group commit: one fsync amortized over every record
//! of the batch.

use bytes::Bytes;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex}; // lint: allow(L6: WAL handles are engine-internal; ordering is pinned by the log-then-apply discipline documented above)

use kvstore::{Client, Cluster, KvError};

use crate::proto::{Request, Response, StoreStats, WireError};
use crate::wal::{replay, SyncMode, WalOp, WalShard};

/// Manifest file recording the shard layout a WAL directory was written
/// with; reopening with a different count would scatter keys to the
/// wrong logs, so it is refused.
const MANIFEST: &str = "wal.manifest";

/// Errors opening or recovering an engine.
#[derive(Debug)]
pub enum EngineError {
    Io(std::io::Error),
    /// The WAL directory was written with a different shard count.
    ShardMismatch {
        on_disk: usize,
        requested: usize,
    },
    /// The manifest file exists but is not ours.
    BadManifest(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "wal io: {e}"),
            EngineError::ShardMismatch { on_disk, requested } => write!(
                f,
                "wal directory has {on_disk} shards, engine wants {requested}"
            ),
            EngineError::BadManifest(m) => write!(f, "bad wal manifest: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// Summary of a crash-recovery replay, one entry per shard.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed into memory.
    pub records: u64,
    /// Torn tail bytes discarded across all shards (unacknowledged
    /// writes that died with the previous process).
    pub torn_bytes: u64,
}

/// A sharded store engine, optionally durable.
pub struct StoreEngine {
    client: Client,
    wal: Option<Vec<Mutex<WalShard>>>, // lint: allow(L6: per-shard WAL handle; lock covers append+apply so log order == memory order)
    recovery: RecoveryReport,
}

impl fmt::Debug for StoreEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreEngine")
            .field("shards", &self.shard_count())
            .field("durable", &self.wal.is_some())
            .finish()
    }
}

impl StoreEngine {
    /// A purely in-memory engine (no WAL) — what the deterministic
    /// campaign loopback path uses.
    pub fn in_memory(shards: usize) -> StoreEngine {
        StoreEngine {
            client: Client::new(Cluster::new(shards)),
            wal: None,
            recovery: RecoveryReport::default(),
        }
    }

    /// Opens a durable engine over `dir`, creating the WAL layout on
    /// first use and replaying existing logs into memory otherwise.
    pub fn open(dir: &Path, shards: usize, mode: SyncMode) -> Result<StoreEngine, EngineError> {
        std::fs::create_dir_all(dir)?;
        let shards = shards.max(1);
        check_or_write_manifest(dir, shards)?;
        let cluster = Cluster::new(shards);
        let client = Client::new(Arc::clone(&cluster));
        let mut handles = Vec::with_capacity(shards);
        let mut recovery = RecoveryReport::default();
        for i in 0..shards {
            let path = shard_wal_path(dir, i);
            let rep = replay(&path)?;
            recovery.torn_bytes += rep.torn_bytes;
            let shard = cluster.shard(i);
            for op in &rep.ops {
                recovery.records += 1;
                match op {
                    WalOp::Put { key, value } => {
                        shard.set(key, value.clone());
                    }
                    WalOp::Del { key } => {
                        shard.del(key);
                    }
                    // A rename whose source vanished can only mean the
                    // log predates a crash bug; tolerate it the way
                    // taridx tolerates stale sidecar entries.
                    WalOp::Rename { from, to } => {
                        let _ = shard.rename(from, to);
                    }
                }
            }
            let mut wal = WalShard::open_append(&path, mode, rep.clean_bytes)?;
            wal.records = rep.ops.len() as u64;
            handles.push(Mutex::new(wal)); // lint: allow(L6: constructing the per-shard WAL handle declared above; same lock discipline)
        }
        Ok(StoreEngine {
            client,
            wal: Some(handles),
            recovery,
        })
    }

    /// What recovery found when this engine was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The cluster behind the engine.
    pub fn cluster(&self) -> &Arc<Cluster> {
        self.client.cluster()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cluster().shard_count()
    }

    /// Whether mutations are being logged.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Durability barrier: syncs every shard WAL that has unsynced
    /// records. Returns the number of shards that needed a sync.
    pub fn sync_dirty(&self) -> std::io::Result<u64> {
        let Some(wal) = &self.wal else { return Ok(0) };
        let mut synced = 0;
        for shard in wal {
            if shard.lock().expect("wal lock poisoned").sync()? {
                synced += 1;
            }
        }
        Ok(synced)
    }

    /// Logs `op` to the shard owning `routing_key` and applies `apply`
    /// under the same WAL lock (see the module docs for why).
    fn logged<T>(
        &self,
        routing_key: &str,
        op: WalOp,
        apply: impl FnOnce() -> T,
    ) -> Result<T, Response> {
        match &self.wal {
            None => Ok(apply()),
            Some(wal) => {
                let idx = self.cluster().shard_for(routing_key);
                let mut guard = wal[idx].lock().expect("wal lock poisoned");
                if let Err(e) = guard.append(&op) {
                    return Err(Response::Err(WireError::Server(format!("wal append: {e}"))));
                }
                Ok(apply())
            }
        }
    }

    /// Executes one request. Infallible at this layer: every failure
    /// mode is a typed [`Response`].
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Unit,
            Request::Put { key, value } => {
                let cluster = self.cluster();
                let shard = cluster.shard(cluster.shard_for(&key));
                let op = WalOp::Put {
                    key: key.clone(),
                    value: value.clone(),
                };
                match self.logged(&key, op, || shard.set(&key, value)) {
                    Ok(was_new) => Response::Bool(was_new),
                    Err(resp) => resp,
                }
            }
            Request::Get { key } => Response::Value(self.client.get(&key)),
            Request::Del { key } => {
                let cluster = self.cluster();
                let shard = cluster.shard(cluster.shard_for(&key));
                let op = WalOp::Del { key: key.clone() };
                match self.logged(&key, op, || shard.del(&key)) {
                    Ok(existed) => Response::Bool(existed),
                    Err(resp) => resp,
                }
            }
            Request::Exists { key } => Response::Bool(self.client.exists(&key)),
            Request::Rename { from, to } => {
                let cluster = self.cluster();
                let (sf, st) = (cluster.shard_for(&from), cluster.shard_for(&to));
                if sf != st {
                    return Response::Err(WireError::CrossShardRename { from, to });
                }
                let shard = cluster.shard(sf);
                let op = WalOp::Rename {
                    from: from.clone(),
                    to: to.clone(),
                };
                match self.logged(&from, op, || shard.rename(&from, &to)) {
                    Ok(Ok(())) => Response::Unit,
                    Ok(Err(KvError::NoSuchKey(k))) => Response::Err(WireError::NoSuchKey(k)),
                    Ok(Err(KvError::CrossShardRename { from, to })) => {
                        Response::Err(WireError::CrossShardRename { from, to })
                    }
                    Err(resp) => resp,
                }
            }
            Request::Keys { pattern } => Response::KeyList(self.client.keys(&pattern)),
            Request::Scan {
                pattern,
                cursor,
                count,
            } => {
                let (keys, next) = self.client.scan(&pattern, cursor, count as usize);
                Response::ScanPage { keys, next }
            }
            Request::PutMany { pairs } => {
                // Group by owning shard so each shard's WAL is locked
                // once per batch, preserving log-order == memory-order
                // while amortizing the locking.
                let cluster = self.cluster();
                let mut by_shard: Vec<Vec<(String, Bytes)>> =
                    (0..cluster.shard_count()).map(|_| Vec::new()).collect();
                for (k, v) in pairs {
                    by_shard[cluster.shard_for(&k)].push((k, v));
                }
                let mut new_keys = 0u64;
                for (idx, batch) in by_shard.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let shard = cluster.shard(idx);
                    let mut guard = self
                        .wal
                        .as_ref()
                        .map(|wal| wal[idx].lock().expect("wal lock poisoned"));
                    for (k, v) in batch {
                        if let Some(g) = guard.as_mut() {
                            let op = WalOp::Put {
                                key: k.clone(),
                                value: v.clone(),
                            };
                            if let Err(e) = g.append(&op) {
                                return Response::Err(WireError::Server(format!(
                                    "wal append: {e}"
                                )));
                            }
                        }
                        if shard.set(&k, v) {
                            new_keys += 1;
                        }
                    }
                }
                Response::Count(new_keys)
            }
            Request::GetMany { keys } => Response::Values(self.client.mget(&keys)),
            Request::DelMany { keys } => {
                let cluster = self.cluster();
                let mut by_shard: Vec<Vec<String>> =
                    (0..cluster.shard_count()).map(|_| Vec::new()).collect();
                for k in keys {
                    by_shard[cluster.shard_for(&k)].push(k);
                }
                let mut deleted = 0u64;
                for (idx, batch) in by_shard.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let shard = cluster.shard(idx);
                    let mut guard = self
                        .wal
                        .as_ref()
                        .map(|wal| wal[idx].lock().expect("wal lock poisoned"));
                    for k in batch {
                        if let Some(g) = guard.as_mut() {
                            if let Err(e) = g.append(&WalOp::Del { key: k.clone() }) {
                                return Response::Err(WireError::Server(format!(
                                    "wal append: {e}"
                                )));
                            }
                        }
                        if shard.del(&k) {
                            deleted += 1;
                        }
                    }
                }
                Response::Count(deleted)
            }
            Request::Stats => {
                let cluster = self.cluster();
                let (mut records, mut syncs) = (0u64, 0u64);
                if let Some(wal) = &self.wal {
                    for shard in wal {
                        let g = shard.lock().expect("wal lock poisoned");
                        records += g.records;
                        syncs += g.syncs;
                    }
                }
                Response::Stats(StoreStats {
                    shards: cluster.shard_count() as u32,
                    keys: cluster.len() as u64,
                    memory_bytes: cluster.memory_bytes() as u64,
                    wal_records: records,
                    wal_syncs: syncs,
                })
            }
            Request::Sync => match self.sync_dirty() {
                Ok(_) => Response::Unit,
                Err(e) => Response::Err(WireError::Server(format!("sync: {e}"))),
            },
        }
    }
}

fn shard_wal_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}.wal"))
}

fn check_or_write_manifest(dir: &Path, shards: usize) -> Result<(), EngineError> {
    let path = dir.join(MANIFEST);
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let mut lines = text.lines();
            if lines.next() != Some("storeserver-wal v1") {
                return Err(EngineError::BadManifest("unknown header".into()));
            }
            let on_disk: usize = lines
                .next()
                .and_then(|l| l.strip_prefix("shards "))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| EngineError::BadManifest("missing shard count".into()))?;
            if on_disk != shards {
                return Err(EngineError::ShardMismatch {
                    on_disk,
                    requested: shards,
                });
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // Same atomic tmp+rename discipline as taridx sidecar saves.
            let tmp = dir.join(format!("{MANIFEST}.tmp"));
            std::fs::write(&tmp, format!("storeserver-wal v1\nshards {shards}\n"))?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        }
        Err(e) => Err(EngineError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_handles_the_full_op_set() {
        let e = StoreEngine::in_memory(8);
        assert_eq!(e.handle(Request::Ping), Response::Unit);
        assert_eq!(
            e.handle(Request::Put {
                key: "ns:{k}".into(),
                value: Bytes::from_static(b"v1")
            }),
            Response::Bool(true)
        );
        assert_eq!(
            e.handle(Request::Put {
                key: "ns:{k}".into(),
                value: Bytes::from_static(b"v2")
            }),
            Response::Bool(false)
        );
        assert_eq!(
            e.handle(Request::Get {
                key: "ns:{k}".into()
            }),
            Response::Value(Some(Bytes::from_static(b"v2")))
        );
        assert_eq!(
            e.handle(Request::Rename {
                from: "ns:{k}".into(),
                to: "done:{k}".into()
            }),
            Response::Unit
        );
        assert_eq!(
            e.handle(Request::Keys {
                pattern: "done:*".into()
            }),
            Response::KeyList(vec!["done:{k}".into()])
        );
        assert_eq!(
            e.handle(Request::Del {
                key: "done:{k}".into()
            }),
            Response::Bool(true)
        );
        assert_eq!(
            e.handle(Request::Get {
                key: "done:{k}".into()
            }),
            Response::Value(None)
        );
    }

    #[test]
    fn rename_errors_are_typed_not_panics() {
        let e = StoreEngine::in_memory(64);
        // Find two untagged keys on different shards.
        let from = "alpha".to_string();
        let to = (0..10_000)
            .map(|i| format!("beta-{i}"))
            .find(|k| e.cluster().shard_for(k) != e.cluster().shard_for(&from))
            .unwrap();
        assert!(matches!(
            e.handle(Request::Rename {
                from: from.clone(),
                to
            }),
            Response::Err(WireError::CrossShardRename { .. })
        ));
        assert!(matches!(
            e.handle(Request::Rename {
                from: "missing:{x}".into(),
                to: "other:{x}".into()
            }),
            Response::Err(WireError::NoSuchKey(_))
        ));
    }

    #[test]
    fn durable_engine_recovers_after_drop() {
        let dir = tmpdir("recover");
        {
            let e = StoreEngine::open(&dir, 4, SyncMode::Virtual).unwrap();
            for i in 0..100 {
                e.handle(Request::Put {
                    key: format!("ns:{{k{i}}}"),
                    value: Bytes::from(vec![i as u8; 16]),
                });
            }
            e.handle(Request::Rename {
                from: "ns:{k0}".into(),
                to: "done:{k0}".into(),
            });
            e.handle(Request::Del {
                key: "ns:{k1}".into(),
            });
            e.sync_dirty().unwrap();
        }
        let e = StoreEngine::open(&dir, 4, SyncMode::Virtual).unwrap();
        assert_eq!(e.recovery().records, 102);
        assert_eq!(e.recovery().torn_bytes, 0);
        assert_eq!(e.cluster().len(), 99);
        assert_eq!(
            e.handle(Request::Get {
                key: "done:{k0}".into()
            }),
            Response::Value(Some(Bytes::from(vec![0u8; 16])))
        );
        assert_eq!(
            e.handle(Request::Get {
                key: "ns:{k1}".into()
            }),
            Response::Value(None)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_mismatch_is_refused() {
        let dir = tmpdir("mismatch");
        drop(StoreEngine::open(&dir, 4, SyncMode::Virtual).unwrap());
        assert!(matches!(
            StoreEngine::open(&dir, 8, SyncMode::Virtual),
            Err(EngineError::ShardMismatch {
                on_disk: 4,
                requested: 8
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ops_group_commit_per_shard() {
        let dir = tmpdir("batch");
        let e = StoreEngine::open(&dir, 4, SyncMode::Virtual).unwrap();
        let pairs: Vec<(String, Bytes)> = (0..50)
            .map(|i| (format!("k{i}"), Bytes::from(vec![i as u8])))
            .collect();
        assert_eq!(
            e.handle(Request::PutMany {
                pairs: pairs.clone()
            }),
            Response::Count(50)
        );
        // One barrier syncs at most once per dirty shard, regardless of
        // how many records the batch appended.
        let synced = e.sync_dirty().unwrap();
        assert!((1..=4).contains(&synced), "synced {synced} shards");
        assert_eq!(e.sync_dirty().unwrap(), 0, "second barrier is a no-op");
        let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(e.handle(Request::DelMany { keys }), Response::Count(50));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
