//! The store client: one API over two transports.
//!
//! [`TcpTransport`] speaks the wire protocol over a socket;
//! [`LoopbackTransport`] runs the *same encoded frames* through a
//! [`StoreEngine`] in-process — no sockets, no threads, no wall clock —
//! which is what lets the batch campaign path and tier-1 tests use the
//! networked backend deterministically. Because loopback frames go
//! through the full encode → decode → engine → encode → decode cycle,
//! the codec is exercised even where no network exists, and a request
//! that would fail on the wire fails identically in-process.
//!
//! Pipelining: [`StoreClient::call_pipelined`] writes every request
//! frame before reading any response, then matches responses back by
//! sequence id. One round trip amortized over the whole batch is where
//! the ≥5× over ping-pong in `BENCH_store.json` comes from — the same
//! effect the paper got from Redis pipelining on Summit's spine.

use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use crate::engine::StoreEngine;
use crate::proto::{read_frame, Request, Response, StoreStats, WireError};
use crate::StoreError;

/// A bidirectional frame pipe.
pub trait Transport: Send {
    /// Queues one encoded frame for sending.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Pushes queued frames to the peer.
    fn flush(&mut self) -> io::Result<()>;
    /// Receives the next response frame `(seq, status, body)`, blocking.
    fn recv(&mut self) -> io::Result<(u64, u8, Vec<u8>)>;
}

/// Frames over a TCP socket.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Connects to a store server.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(TcpTransport {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.writer.write_all(frame)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<(u64, u8, Vec<u8>)> {
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

/// Frames through an in-process engine: deterministic, socket-free.
///
/// `send` executes the request immediately (decoding the same bytes a
/// server would read off the wire) and queues the encoded response;
/// `recv` dequeues. When the engine is durable, every mutation is
/// synced before its response is queued — the ack-after-durability
/// contract held with zero group-commit latency.
pub struct LoopbackTransport {
    engine: Arc<StoreEngine>,
    responses: VecDeque<Vec<u8>>,
}

impl LoopbackTransport {
    /// Wraps an engine.
    pub fn new(engine: Arc<StoreEngine>) -> LoopbackTransport {
        LoopbackTransport {
            engine,
            responses: VecDeque::new(),
        }
    }

    /// The engine behind this transport.
    pub fn engine(&self) -> &Arc<StoreEngine> {
        &self.engine
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let mut r = frame;
        let (seq, op, body) = read_frame(&mut r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty frame"))?;
        let resp = match Request::decode(op, &body) {
            Ok(req) => self.engine.handle(req),
            Err(e) => Response::Err(WireError::BadRequest(e)),
        };
        self.engine.sync_dirty()?;
        self.responses.push_back(resp.encode_frame(seq));
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn recv(&mut self) -> io::Result<(u64, u8, Vec<u8>)> {
        let frame = self.responses.pop_front().ok_or_else(|| {
            io::Error::new(io::ErrorKind::WouldBlock, "no response queued on loopback")
        })?;
        let mut r = &frame[..];
        read_frame(&mut r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response frame"))
    }
}

/// A typed client over any [`Transport`].
pub struct StoreClient {
    transport: Box<dyn Transport>,
    next_seq: u64,
}

impl StoreClient {
    /// A client over an arbitrary transport.
    pub fn over(transport: Box<dyn Transport>) -> StoreClient {
        StoreClient {
            transport,
            next_seq: 0,
        }
    }

    /// Connects over TCP.
    pub fn connect(addr: SocketAddr) -> io::Result<StoreClient> {
        Ok(StoreClient::over(Box::new(TcpTransport::connect(addr)?)))
    }

    /// A deterministic in-process client over `engine`.
    pub fn loopback(engine: Arc<StoreEngine>) -> StoreClient {
        StoreClient::over(Box::new(LoopbackTransport::new(engine)))
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// One request, one response (a full round trip on TCP).
    pub fn call(&mut self, req: &Request) -> Result<Response, StoreError> {
        let seq = self.next_seq();
        self.transport.send(&req.encode_frame(seq))?;
        self.transport.flush()?;
        let (got_seq, st, body) = self.transport.recv()?;
        if got_seq != seq {
            return Err(StoreError::Protocol(format!(
                "response seq {got_seq} does not match request seq {seq}"
            )));
        }
        Response::decode(st, &body).map_err(StoreError::Protocol)
    }

    /// Pipelined execution: all requests are written before any
    /// response is read, so the whole batch costs one round trip of
    /// latency instead of one per request. Responses come back
    /// positionally matched (and seq-verified) to `reqs`.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, StoreError> {
        let first = self.next_seq;
        for req in reqs {
            let seq = self.next_seq();
            self.transport.send(&req.encode_frame(seq))?;
        }
        self.transport.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let (seq, st, body) = self.transport.recv()?;
            let want = first + i as u64;
            if seq != want {
                return Err(StoreError::Protocol(format!(
                    "pipelined response seq {seq}, wanted {want}"
                )));
            }
            out.push(Response::decode(st, &body).map_err(StoreError::Protocol)?);
        }
        Ok(out)
    }

    fn unexpected(resp: Response) -> StoreError {
        match resp {
            Response::Err(e) => e.into(),
            other => StoreError::Protocol(format!("unexpected response {other:?}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), StoreError> {
        match self.call(&Request::Ping)? {
            Response::Unit => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Stores one value; true when the key was new.
    pub fn put(&mut self, key: &str, value: impl Into<Bytes>) -> Result<bool, StoreError> {
        let req = Request::Put {
            key: key.to_string(),
            value: value.into(),
        };
        match self.call(&req)? {
            Response::Bool(b) => Ok(b),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches one value.
    pub fn get(&mut self, key: &str) -> Result<Option<Bytes>, StoreError> {
        match self.call(&Request::Get {
            key: key.to_string(),
        })? {
            Response::Value(v) => Ok(v),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Deletes one key; true when it existed.
    pub fn del(&mut self, key: &str) -> Result<bool, StoreError> {
        match self.call(&Request::Del {
            key: key.to_string(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Whether `key` exists.
    pub fn exists(&mut self, key: &str) -> Result<bool, StoreError> {
        match self.call(&Request::Exists {
            key: key.to_string(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Renames `from` to `to` (same-shard only, per hash-tag routing).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        match self.call(&Request::Rename {
            from: from.to_string(),
            to: to.to_string(),
        })? {
            Response::Unit => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// All keys matching a glob pattern.
    pub fn keys(&mut self, pattern: &str) -> Result<Vec<String>, StoreError> {
        match self.call(&Request::Keys {
            pattern: pattern.to_string(),
        })? {
            Response::KeyList(keys) => Ok(keys),
            other => Err(Self::unexpected(other)),
        }
    }

    /// One incremental scan page; `None` next-cursor means done.
    pub fn scan(
        &mut self,
        pattern: &str,
        cursor: u64,
        count: u32,
    ) -> Result<(Vec<String>, Option<u64>), StoreError> {
        match self.call(&Request::Scan {
            pattern: pattern.to_string(),
            cursor,
            count,
        })? {
            Response::ScanPage { keys, next } => Ok((keys, next)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Batched put; returns how many keys were new. One round trip.
    pub fn put_many(&mut self, pairs: Vec<(String, Bytes)>) -> Result<u64, StoreError> {
        match self.call(&Request::PutMany { pairs })? {
            Response::Count(n) => Ok(n),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Batched get, positionally matched. One round trip.
    pub fn get_many(&mut self, keys: Vec<String>) -> Result<Vec<Option<Bytes>>, StoreError> {
        match self.call(&Request::GetMany { keys })? {
            Response::Values(v) => Ok(v),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Batched delete; returns how many keys existed. One round trip.
    pub fn del_many(&mut self, keys: Vec<String>) -> Result<u64, StoreError> {
        match self.call(&Request::DelMany { keys })? {
            Response::Count(n) => Ok(n),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Server-side statistics.
    pub fn stats(&mut self) -> Result<StoreStats, StoreError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Explicit durability barrier.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        match self.call(&Request::Sync)? {
            Response::Unit => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}

/// A reconnecting TCP client for fault-injected environments.
///
/// On a connection drop the client reconnects and retries. Every store
/// op except `rename` is idempotent, so blind retry is safe; a retried
/// `rename` that answers `NoSuchKey` is disambiguated by checking the
/// destination — if `to` exists, the first attempt landed before the
/// drop and the rename already happened.
pub struct RetryClient {
    addr: SocketAddr,
    inner: Option<StoreClient>,
    max_attempts: usize,
    /// Connection drops observed (and survived) so far.
    pub drops_seen: u64,
}

impl RetryClient {
    /// Connects, allowing up to `max_attempts` tries per operation.
    pub fn connect(addr: SocketAddr, max_attempts: usize) -> io::Result<RetryClient> {
        Ok(RetryClient {
            addr,
            inner: Some(StoreClient::connect(addr)?),
            max_attempts: max_attempts.max(1),
            drops_seen: 0,
        })
    }

    fn client(&mut self) -> io::Result<&mut StoreClient> {
        if self.inner.is_none() {
            self.inner = Some(StoreClient::connect(self.addr)?);
        }
        Ok(self.inner.as_mut().expect("just ensured"))
    }

    fn retry<T>(
        &mut self,
        mut op: impl FnMut(&mut StoreClient) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut last: Option<StoreError> = None;
        for _ in 0..self.max_attempts {
            match self.client() {
                Err(e) => last = Some(StoreError::Io(e)),
                Ok(client) => match op(client) {
                    Ok(v) => return Ok(v),
                    Err(StoreError::Io(e)) => {
                        // Connection is suspect: drop it and redial.
                        self.inner = None;
                        self.drops_seen += 1;
                        last = Some(StoreError::Io(e));
                    }
                    Err(other) => return Err(other),
                },
            }
        }
        Err(last.unwrap_or_else(|| StoreError::Protocol("retry budget exhausted".into())))
    }

    /// Idempotent put with retry.
    pub fn put(&mut self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.retry(|c| c.put(key, value.clone()).map(|_| ()))
    }

    /// Get with retry.
    pub fn get(&mut self, key: &str) -> Result<Option<Bytes>, StoreError> {
        self.retry(|c| c.get(key))
    }

    /// Idempotent delete with retry (existence answer may be consumed
    /// by the drop; the post-state is what matters).
    pub fn del(&mut self, key: &str) -> Result<(), StoreError> {
        self.retry(|c| c.del(key).map(|_| ()))
    }

    /// Batched put with retry.
    pub fn put_many(&mut self, pairs: &[(String, Bytes)]) -> Result<(), StoreError> {
        self.retry(|c| c.put_many(pairs.to_vec()).map(|_| ()))
    }

    /// Keys with retry.
    pub fn keys(&mut self, pattern: &str) -> Result<Vec<String>, StoreError> {
        self.retry(|c| c.keys(pattern))
    }

    /// Rename with drop-ambiguity resolution (see the type docs).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut retried = false;
        let mut last: Option<StoreError> = None;
        for _ in 0..self.max_attempts {
            let client = match self.client() {
                Ok(c) => c,
                Err(e) => {
                    last = Some(StoreError::Io(e));
                    continue;
                }
            };
            match client.rename(from, to) {
                Ok(()) => return Ok(()),
                Err(StoreError::Io(e)) => {
                    self.inner = None;
                    self.drops_seen += 1;
                    retried = true;
                    last = Some(StoreError::Io(e));
                }
                Err(StoreError::NoSuchKey(k)) if retried => {
                    // The pre-drop attempt may have landed: the rename
                    // happened iff the destination now exists.
                    if self.retry(|c| c.exists(to))? {
                        return Ok(());
                    }
                    return Err(StoreError::NoSuchKey(k));
                }
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or_else(|| StoreError::Protocol("retry budget exhausted".into())))
    }
}
