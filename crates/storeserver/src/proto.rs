//! Length-prefixed binary wire protocol with request pipelining.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! | field  | bytes | meaning                                        |
//! |--------|-------|------------------------------------------------|
//! | len    | 4, LE | byte length of the rest of the frame           |
//! | seq    | 8, LE | client-chosen sequence id, echoed in the reply |
//! | tag    | 1     | request: opcode · response: status code        |
//! | body   | len−9 | tag-specific payload                           |
//!
//! The sequence id is what makes pipelining work: a client may have any
//! number of requests in flight on one connection and matches responses
//! back to requests by `seq` (the server answers in arrival order, so
//! `seq` also doubles as an ordering check). Strings and byte values are
//! encoded as `[u32 LE len][bytes]`; strings must be UTF-8.
//!
//! Ok responses carry a one-byte *kind* tag before the payload so the
//! body is self-describing; error statuses carry their detail strings
//! directly. Decoding is strict: trailing bytes, bad tags, or non-UTF-8
//! strings bounce with a description rather than being ignored.

use bytes::Bytes;
use std::io::{self, BufRead, Write};

/// Hard upper bound on a frame body; anything larger is a protocol error
/// (protects the server from a garbage length prefix).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Request opcodes (the `tag` byte of a request frame).
pub mod opcode {
    pub const PING: u8 = 1;
    pub const PUT: u8 = 2;
    pub const GET: u8 = 3;
    pub const DEL: u8 = 4;
    pub const EXISTS: u8 = 5;
    pub const RENAME: u8 = 6;
    pub const KEYS: u8 = 7;
    pub const SCAN: u8 = 8;
    pub const PUT_MANY: u8 = 9;
    pub const GET_MANY: u8 = 10;
    pub const DEL_MANY: u8 = 11;
    pub const STATS: u8 = 12;
    pub const SYNC: u8 = 13;
}

/// Response status codes (the `tag` byte of a response frame).
pub mod status {
    pub const OK: u8 = 0;
    pub const NO_SUCH_KEY: u8 = 1;
    pub const CROSS_SHARD_RENAME: u8 = 2;
    pub const BAD_REQUEST: u8 = 3;
    pub const SERVER_ERROR: u8 = 4;
}

/// Kind tags distinguishing Ok-response payload shapes.
mod kind {
    pub const UNIT: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const VALUE: u8 = 2;
    pub const KEY_LIST: u8 = 3;
    pub const SCAN_PAGE: u8 = 4;
    pub const COUNT: u8 = 5;
    pub const VALUES: u8 = 6;
    pub const STATS: u8 = 7;
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Ping,
    Put {
        key: String,
        value: Bytes,
    },
    Get {
        key: String,
    },
    Del {
        key: String,
    },
    Exists {
        key: String,
    },
    Rename {
        from: String,
        to: String,
    },
    Keys {
        pattern: String,
    },
    Scan {
        pattern: String,
        cursor: u64,
        count: u32,
    },
    PutMany {
        pairs: Vec<(String, Bytes)>,
    },
    GetMany {
        keys: Vec<String>,
    },
    DelMany {
        keys: Vec<String>,
    },
    Stats,
    Sync,
}

/// Server-side store statistics returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    pub shards: u32,
    pub keys: u64,
    pub memory_bytes: u64,
    pub wal_records: u64,
    pub wal_syncs: u64,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Ping, Rename, Sync.
    Unit,
    /// Put (key was new), Del (key existed), Exists.
    Bool(bool),
    /// Get; `None` means the key does not exist.
    Value(Option<Bytes>),
    /// Keys.
    KeyList(Vec<String>),
    /// Scan; `next == None` means the scan completed.
    ScanPage {
        keys: Vec<String>,
        next: Option<u64>,
    },
    /// PutMany (new keys), DelMany (keys that existed).
    Count(u64),
    /// GetMany, positionally matching the request keys.
    Values(Vec<Option<Bytes>>),
    Stats(StoreStats),
    /// Any non-Ok status.
    Err(WireError),
}

/// Typed wire-level errors (non-Ok statuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    NoSuchKey(String),
    CrossShardRename { from: String, to: String },
    BadRequest(String),
    Server(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            WireError::CrossShardRename { from, to } => {
                write!(f, "rename crosses shards: {from} -> {to}")
            }
            WireError::BadRequest(m) => write!(f, "bad request: {m}"),
            WireError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

// ---------------------------------------------------------------- framing

/// Writes one frame. Does not flush: pipelining clients batch many
/// frames per flush.
pub fn write_frame(w: &mut impl Write, seq: u64, tag: u8, body: &[u8]) -> io::Result<()> {
    let len = 8 + 1 + body.len();
    if len as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&seq.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(body)
}

/// Reads one frame, returning `(seq, tag, body)`. Returns `None` on a
/// clean EOF at a frame boundary; EOF mid-frame is an error (a torn
/// frame means the peer died mid-send).
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<(u64, u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if !(9..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut seq_buf = [0u8; 8];
    r.read_exact(&mut seq_buf)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut body = vec![0u8; len as usize - 9];
    r.read_exact(&mut body)?;
    Ok(Some((u64::from_le_bytes(seq_buf), tag[0], body)))
}

// ------------------------------------------------------------- primitives

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Strict little-endian cursor over a frame body.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = std::result::Result<T, String>;

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated body: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> DecodeResult<Bytes> {
        let n = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }

    fn str(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn finish(&self) -> DecodeResult<()> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// --------------------------------------------------------------- requests

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => opcode::PING,
            Request::Put { .. } => opcode::PUT,
            Request::Get { .. } => opcode::GET,
            Request::Del { .. } => opcode::DEL,
            Request::Exists { .. } => opcode::EXISTS,
            Request::Rename { .. } => opcode::RENAME,
            Request::Keys { .. } => opcode::KEYS,
            Request::Scan { .. } => opcode::SCAN,
            Request::PutMany { .. } => opcode::PUT_MANY,
            Request::GetMany { .. } => opcode::GET_MANY,
            Request::DelMany { .. } => opcode::DEL_MANY,
            Request::Stats => opcode::STATS,
            Request::Sync => opcode::SYNC,
        }
    }

    /// Encodes the body (everything after the tag byte).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping | Request::Stats | Request::Sync => {}
            Request::Put { key, value } => {
                put_str(&mut out, key);
                put_bytes(&mut out, value);
            }
            Request::Get { key } | Request::Del { key } | Request::Exists { key } => {
                put_str(&mut out, key);
            }
            Request::Rename { from, to } => {
                put_str(&mut out, from);
                put_str(&mut out, to);
            }
            Request::Keys { pattern } => put_str(&mut out, pattern),
            Request::Scan {
                pattern,
                cursor,
                count,
            } => {
                put_str(&mut out, pattern);
                put_u64(&mut out, *cursor);
                put_u32(&mut out, *count);
            }
            Request::PutMany { pairs } => {
                put_u32(&mut out, pairs.len() as u32);
                for (k, v) in pairs {
                    put_str(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Request::GetMany { keys } | Request::DelMany { keys } => {
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
        }
        out
    }

    /// Encodes a complete frame for this request.
    pub fn encode_frame(&self, seq: u64) -> Vec<u8> {
        let body = self.encode_body();
        let mut frame = Vec::with_capacity(13 + body.len());
        write_frame(&mut frame, seq, self.opcode(), &body).expect("Vec write cannot fail");
        frame
    }

    /// Decodes a request from its opcode and body.
    pub fn decode(op: u8, body: &[u8]) -> DecodeResult<Request> {
        let mut c = Cur::new(body);
        let req = match op {
            opcode::PING => Request::Ping,
            opcode::PUT => Request::Put {
                key: c.str()?,
                value: c.bytes()?,
            },
            opcode::GET => Request::Get { key: c.str()? },
            opcode::DEL => Request::Del { key: c.str()? },
            opcode::EXISTS => Request::Exists { key: c.str()? },
            opcode::RENAME => Request::Rename {
                from: c.str()?,
                to: c.str()?,
            },
            opcode::KEYS => Request::Keys { pattern: c.str()? },
            opcode::SCAN => Request::Scan {
                pattern: c.str()?,
                cursor: c.u64()?,
                count: c.u32()?,
            },
            opcode::PUT_MANY => {
                let n = c.u32()?;
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    pairs.push((c.str()?, c.bytes()?));
                }
                Request::PutMany { pairs }
            }
            opcode::GET_MANY | opcode::DEL_MANY => {
                let n = c.u32()?;
                let mut keys = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    keys.push(c.str()?);
                }
                if op == opcode::GET_MANY {
                    Request::GetMany { keys }
                } else {
                    Request::DelMany { keys }
                }
            }
            opcode::STATS => Request::Stats,
            opcode::SYNC => Request::Sync,
            other => return Err(format!("unknown opcode {other}")),
        };
        c.finish()?;
        Ok(req)
    }
}

// -------------------------------------------------------------- responses

impl Response {
    /// The status byte this response travels under.
    pub fn status(&self) -> u8 {
        match self {
            Response::Err(WireError::NoSuchKey(_)) => status::NO_SUCH_KEY,
            Response::Err(WireError::CrossShardRename { .. }) => status::CROSS_SHARD_RENAME,
            Response::Err(WireError::BadRequest(_)) => status::BAD_REQUEST,
            Response::Err(WireError::Server(_)) => status::SERVER_ERROR,
            _ => status::OK,
        }
    }

    /// Encodes the body (everything after the tag byte).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Unit => out.push(kind::UNIT),
            Response::Bool(b) => {
                out.push(kind::BOOL);
                out.push(*b as u8);
            }
            Response::Value(v) => {
                out.push(kind::VALUE);
                match v {
                    None => out.push(0),
                    Some(b) => {
                        out.push(1);
                        put_bytes(&mut out, b);
                    }
                }
            }
            Response::KeyList(keys) => {
                out.push(kind::KEY_LIST);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Response::ScanPage { keys, next } => {
                out.push(kind::SCAN_PAGE);
                put_u64(&mut out, next.unwrap_or(u64::MAX));
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Response::Count(n) => {
                out.push(kind::COUNT);
                put_u64(&mut out, *n);
            }
            Response::Values(vals) => {
                out.push(kind::VALUES);
                put_u32(&mut out, vals.len() as u32);
                for v in vals {
                    match v {
                        None => out.push(0),
                        Some(b) => {
                            out.push(1);
                            put_bytes(&mut out, b);
                        }
                    }
                }
            }
            Response::Stats(s) => {
                out.push(kind::STATS);
                put_u32(&mut out, s.shards);
                put_u64(&mut out, s.keys);
                put_u64(&mut out, s.memory_bytes);
                put_u64(&mut out, s.wal_records);
                put_u64(&mut out, s.wal_syncs);
            }
            Response::Err(e) => match e {
                WireError::NoSuchKey(k) => put_str(&mut out, k),
                WireError::CrossShardRename { from, to } => {
                    put_str(&mut out, from);
                    put_str(&mut out, to);
                }
                WireError::BadRequest(m) | WireError::Server(m) => put_str(&mut out, m),
            },
        }
        out
    }

    /// Encodes a complete frame for this response.
    pub fn encode_frame(&self, seq: u64) -> Vec<u8> {
        let body = self.encode_body();
        let mut frame = Vec::with_capacity(13 + body.len());
        write_frame(&mut frame, seq, self.status(), &body).expect("Vec write cannot fail");
        frame
    }

    /// Decodes a response from its status byte and body.
    pub fn decode(st: u8, body: &[u8]) -> DecodeResult<Response> {
        let mut c = Cur::new(body);
        let resp = match st {
            status::NO_SUCH_KEY => Response::Err(WireError::NoSuchKey(c.str()?)),
            status::CROSS_SHARD_RENAME => Response::Err(WireError::CrossShardRename {
                from: c.str()?,
                to: c.str()?,
            }),
            status::BAD_REQUEST => Response::Err(WireError::BadRequest(c.str()?)),
            status::SERVER_ERROR => Response::Err(WireError::Server(c.str()?)),
            status::OK => match c.u8()? {
                kind::UNIT => Response::Unit,
                kind::BOOL => Response::Bool(c.u8()? != 0),
                kind::VALUE => match c.u8()? {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(c.bytes()?)),
                    other => return Err(format!("bad option tag {other}")),
                },
                kind::KEY_LIST => {
                    let n = c.u32()?;
                    let mut keys = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        keys.push(c.str()?);
                    }
                    Response::KeyList(keys)
                }
                kind::SCAN_PAGE => {
                    let raw = c.u64()?;
                    let next = (raw != u64::MAX).then_some(raw);
                    let n = c.u32()?;
                    let mut keys = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        keys.push(c.str()?);
                    }
                    Response::ScanPage { keys, next }
                }
                kind::COUNT => Response::Count(c.u64()?),
                kind::VALUES => {
                    let n = c.u32()?;
                    let mut vals = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        vals.push(match c.u8()? {
                            0 => None,
                            1 => Some(c.bytes()?),
                            other => return Err(format!("bad option tag {other}")),
                        });
                    }
                    Response::Values(vals)
                }
                kind::STATS => Response::Stats(StoreStats {
                    shards: c.u32()?,
                    keys: c.u64()?,
                    memory_bytes: c.u64()?,
                    wal_records: c.u64()?,
                    wal_syncs: c.u64()?,
                }),
                other => return Err(format!("unknown response kind {other}")),
            },
            other => return Err(format!("unknown status {other}")),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = req.encode_frame(42);
        let mut r = &frame[..];
        let (seq, op, body) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(seq, 42);
        assert_eq!(op, req.opcode());
        assert_eq!(Request::decode(op, &body).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let frame = resp.encode_frame(7);
        let mut r = &frame[..];
        let (seq, st, body) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(seq, 7);
        assert_eq!(st, resp.status());
        assert_eq!(Response::decode(st, &body).unwrap(), resp);
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Put {
            key: "ns:{k}".into(),
            value: Bytes::from_static(b"value"),
        });
        roundtrip_req(Request::Get { key: "k".into() });
        roundtrip_req(Request::Del { key: "k".into() });
        roundtrip_req(Request::Exists { key: "k".into() });
        roundtrip_req(Request::Rename {
            from: "a:{t}".into(),
            to: "b:{t}".into(),
        });
        roundtrip_req(Request::Keys {
            pattern: "rdf:*".into(),
        });
        roundtrip_req(Request::Scan {
            pattern: "*".into(),
            cursor: (3 << 32) | 17,
            count: 64,
        });
        roundtrip_req(Request::PutMany {
            pairs: (0..5)
                .map(|i| (format!("k{i}"), Bytes::from(vec![i as u8; i])))
                .collect(),
        });
        roundtrip_req(Request::GetMany {
            keys: vec!["a".into(), "b".into()],
        });
        roundtrip_req(Request::DelMany { keys: vec![] });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Sync);
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_resp(Response::Unit);
        roundtrip_resp(Response::Bool(true));
        roundtrip_resp(Response::Bool(false));
        roundtrip_resp(Response::Value(None));
        roundtrip_resp(Response::Value(Some(Bytes::from_static(b"payload"))));
        roundtrip_resp(Response::KeyList(vec!["a".into(), "b".into()]));
        roundtrip_resp(Response::ScanPage {
            keys: vec!["k".into()],
            next: Some(99),
        });
        roundtrip_resp(Response::ScanPage {
            keys: vec![],
            next: None,
        });
        roundtrip_resp(Response::Count(1234));
        roundtrip_resp(Response::Values(vec![Some(Bytes::from_static(b"x")), None]));
        roundtrip_resp(Response::Stats(StoreStats {
            shards: 20,
            keys: 1,
            memory_bytes: 2,
            wal_records: 3,
            wal_syncs: 4,
        }));
        roundtrip_resp(Response::Err(WireError::NoSuchKey("k".into())));
        roundtrip_resp(Response::Err(WireError::CrossShardRename {
            from: "a".into(),
            to: "b".into(),
        }));
        roundtrip_resp(Response::Err(WireError::BadRequest("nope".into())));
        roundtrip_resp(Response::Err(WireError::Server("disk on fire".into())));
    }

    #[test]
    fn pipelined_frames_parse_in_order() {
        let mut wire = Vec::new();
        for seq in 0..10u64 {
            let req = Request::Put {
                key: format!("k{seq}"),
                value: Bytes::from(vec![seq as u8; 3]),
            };
            wire.extend_from_slice(&req.encode_frame(seq));
        }
        let mut r = &wire[..];
        for seq in 0..10u64 {
            let (got_seq, op, body) = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(got_seq, seq);
            assert!(matches!(
                Request::decode(op, &body).unwrap(),
                Request::Put { .. }
            ));
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let frame = Request::Ping.encode_frame(1);
        let mut r = &frame[..frame.len() - 1];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        assert!(Request::decode(200, &[]).is_err(), "unknown opcode");
        // Trailing bytes after a complete message.
        let mut body = Request::Get { key: "k".into() }.encode_body();
        body.push(0);
        assert!(Request::decode(opcode::GET, &body).is_err());
        // Truncated string length.
        assert!(Request::decode(opcode::GET, &[5, 0, 0, 0, b'x']).is_err());
        // Non-UTF-8 key.
        assert!(Request::decode(opcode::GET, &[1, 0, 0, 0, 0xff]).is_err());
        // Bad frame length prefix.
        let mut r = &[0u8, 0, 0, 0][..];
        assert!(read_frame(&mut r).is_err());
    }
}
