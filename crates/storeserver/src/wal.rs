//! Per-shard write-ahead logs with torn-tail-tolerant replay.
//!
//! Every mutation is appended to the owning shard's log *before* it is
//! applied in memory, and the server acknowledges a write only after the
//! log has been synced — so the set of acknowledged writes is always a
//! subset of what replay recovers (the ledger-conservation contract the
//! crash tests audit). Records are framed as
//!
//! | field | bytes | meaning                                  |
//! |-------|-------|------------------------------------------|
//! | op    | 1     | 1 = put · 2 = del · 3 = rename           |
//! | a_len | 4, LE | length of field A (key / rename source)  |
//! | a     | a_len |                                          |
//! | b_len | 4, LE | length of field B (value / rename target)|
//! | b     | b_len |                                          |
//! | crc   | 4, LE | CRC-32 (IEEE) over everything above      |
//!
//! Replay reads until the file ends or a record fails to parse; a
//! partial or CRC-corrupt tail is *expected* after a crash (the process
//! died mid-append) and is reported as `torn_bytes`, not an error —
//! the same rescan-don't-trust-the-tail discipline `taridx` uses for
//! sidecar indexes. Anything torn was by construction never
//! acknowledged, because acknowledgement waits for fsync.
//!
//! [`SyncMode`] decides what "synced" means: `Real` issues `fsync` for
//! crash durability; `Virtual` only flushes userspace buffers, keeping
//! the deterministic campaign path free of device-speed wall time while
//! exercising the identical record format and replay logic.

use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// How [`WalShard::sync`] makes records durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Flush and `fsync`: records survive process *and* OS crashes.
    Real,
    /// Flush only: records survive process crashes (the kernel holds the
    /// bytes) and the campaign replay path stays wall-clock-free.
    Virtual,
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    Put { key: String, value: Bytes },
    Del { key: String },
    Rename { from: String, to: String },
}

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
const OP_RENAME: u8 = 3;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over `data` (IEEE polynomial, standard init/final xor).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

impl WalOp {
    fn fields(&self) -> (u8, &[u8], &[u8]) {
        match self {
            WalOp::Put { key, value } => (OP_PUT, key.as_bytes(), value),
            WalOp::Del { key } => (OP_DEL, key.as_bytes(), &[]),
            WalOp::Rename { from, to } => (OP_RENAME, from.as_bytes(), to.as_bytes()),
        }
    }

    /// Appends this record's encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let (op, a, b) = self.fields();
        out.push(op);
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        out.extend_from_slice(a);
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Tries to decode one record at the front of `buf`, returning the
    /// op and the bytes consumed. `None` means the tail is torn (too
    /// short, bad tag, or CRC mismatch) — replay stops there.
    fn decode_front(buf: &[u8]) -> Option<(WalOp, usize)> {
        let a_len = u32::from_le_bytes(buf.get(1..5)?.try_into().unwrap()) as usize;
        let b_off = 5 + a_len;
        let b_len = u32::from_le_bytes(buf.get(b_off..b_off + 4)?.try_into().unwrap()) as usize;
        let crc_off = b_off + 4 + b_len;
        let stored = u32::from_le_bytes(buf.get(crc_off..crc_off + 4)?.try_into().unwrap());
        if crc32(&buf[..crc_off]) != stored {
            return None;
        }
        let a = std::str::from_utf8(&buf[5..5 + a_len]).ok()?.to_string();
        let b = &buf[b_off + 4..b_off + 4 + b_len];
        let op = match buf[0] {
            OP_PUT => WalOp::Put {
                key: a,
                value: Bytes::copy_from_slice(b),
            },
            OP_DEL if b.is_empty() => WalOp::Del { key: a },
            OP_RENAME => WalOp::Rename {
                from: a,
                to: std::str::from_utf8(b).ok()?.to_string(),
            },
            _ => return None,
        };
        Some((op, crc_off + 4))
    }
}

/// The result of replaying one shard's log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Records that parsed and passed their CRC, in append order.
    pub ops: Vec<WalOp>,
    /// Bytes of torn tail discarded (0 after a clean shutdown).
    pub torn_bytes: u64,
    /// Bytes of intact records (the offset the log is truncated back to).
    pub clean_bytes: u64,
}

/// Replays a shard log. A missing file is an empty log, not an error.
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    }
    let mut out = WalReplay::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        match WalOp::decode_front(&buf[pos..]) {
            Some((op, used)) => {
                out.ops.push(op);
                pos += used;
            }
            None => break,
        }
    }
    out.clean_bytes = pos as u64;
    out.torn_bytes = (buf.len() - pos) as u64;
    Ok(out)
}

/// An append handle to one shard's log.
///
/// Appends are buffered; [`WalShard::sync`] is the durability barrier
/// the server runs between draining a pipelined batch and flushing the
/// batch's acknowledgements — one fsync covers every record appended
/// since the last sync (group commit).
#[derive(Debug)]
pub struct WalShard {
    writer: BufWriter<File>,
    path: PathBuf,
    mode: SyncMode,
    dirty: bool,
    /// Records appended over this handle's lifetime plus recovered ones.
    pub records: u64,
    /// Durability barriers that actually had something to sync.
    pub syncs: u64,
}

impl WalShard {
    /// Opens (creating if needed) a shard log for appending. When the
    /// file has a torn tail from a previous crash, the tail is cut off
    /// first so new records never hide behind garbage.
    pub fn open_append(path: &Path, mode: SyncMode, clean_bytes: u64) -> io::Result<WalShard> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(false)
            // Never truncate here: the file is the recovered log, and
            // `set_len(clean_bytes)` below cuts exactly the torn tail.
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(clean_bytes)?;
        let mut file = file;
        file.seek_to_end()?;
        Ok(WalShard {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            mode,
            dirty: false,
            records: 0,
            syncs: 0,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (buffered; not yet durable).
    pub fn append(&mut self, op: &WalOp) -> io::Result<()> {
        let mut rec = Vec::with_capacity(64);
        op.encode_into(&mut rec);
        self.writer.write_all(&rec)?;
        self.dirty = true;
        self.records += 1;
        Ok(())
    }

    /// Durability barrier: flushes buffered records and, in
    /// [`SyncMode::Real`], fsyncs them. Returns true when there was
    /// anything to sync.
    pub fn sync(&mut self) -> io::Result<bool> {
        if !self.dirty {
            return Ok(false);
        }
        self.writer.flush()?;
        if self.mode == SyncMode::Real {
            self.writer.get_ref().sync_data()?;
        }
        self.dirty = false;
        self.syncs += 1;
        Ok(true)
    }
}

/// `File::seek` to the end without pulling in `Seek` at every call site.
trait SeekToEnd {
    fn seek_to_end(&mut self) -> io::Result<u64>;
}

impl SeekToEnd for File {
    fn seek_to_end(&mut self) -> io::Result<u64> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                key: "rdf:new:{s1}:f0".into(),
                value: Bytes::from(vec![7u8; 100]),
            },
            WalOp::Rename {
                from: "rdf:new:{s1}:f0".into(),
                to: "rdf:done:{s1}:f0".into(),
            },
            WalOp::Del {
                key: "rdf:done:{s1}:f0".into(),
            },
            WalOp::Put {
                key: "empty".into(),
                value: Bytes::new(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("shard-0.wal");
        let mut wal = WalShard::open_append(&path, SyncMode::Real, 0).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        assert!(wal.sync().unwrap());
        assert!(!wal.sync().unwrap(), "clean log has nothing to sync");
        assert_eq!(wal.records, 4);
        assert_eq!(wal.syncs, 1);
        drop(wal);

        let rep = replay(&path).unwrap();
        assert_eq!(rep.ops, sample_ops());
        assert_eq!(rep.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_not_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("shard-0.wal");
        let mut wal = WalShard::open_append(&path, SyncMode::Virtual, 0).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Chop bytes off the tail one at a time: replay must always
        // return an exact prefix of the full op sequence.
        let full = std::fs::read(&path).unwrap();
        let all = sample_ops();
        for cut in 1..=40usize.min(full.len() - 1) {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let rep = replay(&path).unwrap();
            assert!(rep.ops.len() < all.len() || rep.torn_bytes == 0);
            assert_eq!(
                rep.ops[..],
                all[..rep.ops.len()],
                "prefix after {cut}-byte cut"
            );
            assert_eq!(rep.clean_bytes + rep.torn_bytes, (full.len() - cut) as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_stops_replay_at_the_corruption() {
        let dir = tmpdir("corrupt");
        let path = dir.join("shard-0.wal");
        let mut wal = WalShard::open_append(&path, SyncMode::Virtual, 0).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.ops.len() < sample_ops().len());
        assert_eq!(rep.ops[..], sample_ops()[..rep.ops.len()]);
        assert!(rep.torn_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends_cleanly() {
        let dir = tmpdir("reopen");
        let path = dir.join("shard-0.wal");
        let mut wal = WalShard::open_append(&path, SyncMode::Virtual, 0).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Simulate a crash mid-append: garbage tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let clean = bytes.len() as u64;
        bytes.extend_from_slice(&[1, 200, 0]);
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.clean_bytes, clean);
        assert_eq!(rep.torn_bytes, 3);

        let mut wal = WalShard::open_append(&path, SyncMode::Virtual, rep.clean_bytes).unwrap();
        let extra = WalOp::Put {
            key: "post-crash".into(),
            value: Bytes::from_static(b"v"),
        };
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let rep = replay(&path).unwrap();
        assert_eq!(rep.torn_bytes, 0);
        let mut want = sample_ops();
        want.push(extra);
        assert_eq!(rep.ops, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_replays_empty() {
        let rep = replay(Path::new("/nonexistent/never/shard-9.wal")).unwrap();
        assert!(rep.ops.is_empty());
        assert_eq!(rep.torn_bytes, 0);
    }
}
