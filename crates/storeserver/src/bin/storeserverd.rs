//! The store daemon: a standalone sharded datastore server process.
//!
//! Prints `listening <addr>` on stdout once bound (so harnesses using
//! an ephemeral port can discover it), then serves until killed. The
//! WAL crash-recovery test SIGKILLs this process mid-write and audits
//! that every acknowledged write survives replay.
//!
//! Usage:
//!   storeserverd [--addr <host:port>] [--data-dir <path>] [--shards <n>]
//!                [--sync real|virtual]
//!
//! Without `--data-dir` the store is memory-only (no WAL).

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use storeserver::{StoreEngine, StoreServer, SyncMode};

struct Args {
    addr: String,
    data_dir: Option<PathBuf>,
    shards: usize,
    sync: SyncMode,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        data_dir: None,
        shards: 20,
        sync: SyncMode::Real,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = take("--addr"),
            "--data-dir" => args.data_dir = Some(PathBuf::from(take("--data-dir"))),
            "--shards" => args.shards = take("--shards").parse().expect("--shards"),
            "--sync" => {
                args.sync = match take("--sync").as_str() {
                    "real" => SyncMode::Real,
                    "virtual" => SyncMode::Virtual,
                    other => panic!("--sync must be real or virtual, got {other}"),
                }
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let engine = match &args.data_dir {
        None => Arc::new(StoreEngine::in_memory(args.shards)),
        Some(dir) => {
            let engine = StoreEngine::open(dir, args.shards, args.sync)
                .unwrap_or_else(|e| panic!("open {}: {e}", dir.display()));
            let rec = engine.recovery().clone();
            if rec.records > 0 || rec.torn_bytes > 0 {
                eprintln!(
                    "storeserverd: recovered {} records ({} torn tail bytes discarded)",
                    rec.records, rec.torn_bytes
                );
            }
            Arc::new(engine)
        }
    };
    let server = StoreServer::start(engine, &args.addr).expect("bind");
    // The discovery line the harness reads; flush so a pipe sees it now.
    println!("listening {}", server.addr());
    std::io::stdout().flush().expect("stdout");
    server.join();
}
