//! A networked, sharded datastore server — the paper's Redis cluster
//! promoted from in-process stand-in to a real service.
//!
//! MuMMI's coordination layer ran a 20-node Redis cluster as its
//! "short-term and highly responsive in-memory cache" (§4.2); Fig 7
//! measures exactly the key-scan / value-fetch / delete families that
//! gate feedback throughput. This crate gives the reproduction the same
//! tier as an actual server process:
//!
//! * [`proto`] — a length-prefixed binary-opcode wire protocol with
//!   **request pipelining**: many in-flight ops per connection, matched
//!   by sequence id.
//! * [`wal`] — per-shard write-ahead logs with CRC-framed records,
//!   group-commit fsync batching, and torn-tail-tolerant crash
//!   recovery (taridx's rescan discipline, applied to a log).
//! * [`engine`] — the transport-agnostic core: `kvstore::Cluster`
//!   hash-tag placement, log-then-apply mutation ordering.
//! * [`server`] — thread-per-connection TCP front end that only acks
//!   after the batch's durability barrier, plus chaos drop schedules.
//! * [`client`] — a typed client with batched ops (`put_many` /
//!   `get_many` / `scan`), explicit pipelining, and two transports: TCP
//!   and a deterministic in-process **loopback** (no sockets, no
//!   threads) that the batch campaign path rides so replay stays
//!   byte-identical.
//!
//! ```
//! use storeserver::{StoreClient, StoreEngine};
//! use std::sync::Arc;
//!
//! // Deterministic in-process path (what campaigns use):
//! let engine = Arc::new(StoreEngine::in_memory(20));
//! let mut client = StoreClient::loopback(engine);
//! client.put("rdf:new:{sim1}:f0", &b"rdf bytes"[..]).unwrap();
//! client.rename("rdf:new:{sim1}:f0", "rdf:done:{sim1}:f0").unwrap();
//! assert_eq!(client.keys("rdf:done:*").unwrap().len(), 1);
//! ```

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;
pub mod wal;

pub use client::{LoopbackTransport, RetryClient, StoreClient, TcpTransport, Transport};
pub use engine::{EngineError, RecoveryReport, StoreEngine};
pub use proto::{Request, Response, StoreStats, WireError};
pub use server::{DropSchedule, StoreServer};
pub use wal::{SyncMode, WalOp};

use std::fmt;

/// Client-side errors: transport failures plus the typed store errors
/// mirrored from the wire statuses.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Rename source does not exist.
    NoSuchKey(String),
    /// Rename would cross shards; callers must use hash tags.
    CrossShardRename {
        from: String,
        to: String,
    },
    /// Malformed request as judged by the server.
    BadRequest(String),
    /// Server-side failure (e.g. WAL I/O).
    Server(String),
    /// The reply violated the protocol (bad seq, wrong shape).
    Protocol(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "transport: {e}"),
            StoreError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            StoreError::CrossShardRename { from, to } => {
                write!(f, "rename crosses shards: {from} -> {to}")
            }
            StoreError::BadRequest(m) => write!(f, "bad request: {m}"),
            StoreError::Server(m) => write!(f, "server error: {m}"),
            StoreError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::NoSuchKey(k) => StoreError::NoSuchKey(k),
            WireError::CrossShardRename { from, to } => StoreError::CrossShardRename { from, to },
            WireError::BadRequest(m) => StoreError::BadRequest(m),
            WireError::Server(m) => StoreError::Server(m),
        }
    }
}

/// Convenience alias for client results.
pub type Result<T> = std::result::Result<T, StoreError>;
