//! Job specifications, states, and lifecycle events.

use resources::JobShape;
use simcore::{SimDuration, SimTime};

/// Unique job identifier, assigned at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The workflow-level class of a job — MuMMI's four job types plus the
/// continuum simulation.
///
/// `Ord` so classes can key ordered maps: every per-class aggregation in
/// the scheduler iterates deterministically (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobClass {
    /// The macro-scale GridSim2D job (multi-node, CPU only).
    Continuum,
    /// createsim: continuum patch → equilibrated CG system (CPU only).
    CgSetup,
    /// ddcMD CG simulation + online analysis (1 GPU).
    CgSim,
    /// backmapping: CG frame → AA system (CPU only).
    AaSetup,
    /// AMBER AA simulation + online analysis (1 GPU).
    AaSim,
    /// Anything else (the framework is generic).
    Other,
}

impl JobClass {
    /// Whether this class occupies GPUs.
    pub fn uses_gpu(self) -> bool {
        matches!(self, JobClass::CgSim | JobClass::AaSim)
    }

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Continuum => "continuum",
            JobClass::CgSetup => "cg-setup",
            JobClass::CgSim => "cg-sim",
            JobClass::AaSetup => "aa-setup",
            JobClass::AaSim => "aa-sim",
            JobClass::Other => "other",
        }
    }

    /// The inverse of [`JobClass::label`] (used by serialized fault plans).
    pub fn from_label(label: &str) -> Option<JobClass> {
        match label {
            "continuum" => Some(JobClass::Continuum),
            "cg-setup" => Some(JobClass::CgSetup),
            "cg-sim" => Some(JobClass::CgSim),
            "aa-setup" => Some(JobClass::AaSetup),
            "aa-sim" => Some(JobClass::AaSim),
            "other" => Some(JobClass::Other),
            _ => None,
        }
    }
}

/// How a job will end, decided by the (virtual) application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Runs for the full `runtime`, then completes successfully.
    Success,
    /// Runs for the full `runtime`, then is reported failed (the tracker
    /// resubmits failed jobs).
    Failure,
}

/// A job submission: what to run, what it needs, how long it will hold the
/// resources in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workflow class.
    pub class: JobClass,
    /// Resource request.
    pub shape: JobShape,
    /// Virtual wall time the job holds its allocation.
    pub runtime: SimDuration,
    /// Terminal outcome.
    pub outcome: JobOutcome,
}

impl JobSpec {
    /// A successful job of the given class/shape/runtime.
    pub fn new(class: JobClass, shape: JobShape, runtime: SimDuration) -> JobSpec {
        JobSpec {
            class,
            shape,
            runtime,
            outcome: JobOutcome::Success,
        }
    }

    /// Marks the job as one that will fail after running.
    pub fn failing(mut self) -> JobSpec {
        self.outcome = JobOutcome::Failure;
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet ingested by the queue manager.
    Submitted,
    /// In the FCFS queue, waiting for the matcher.
    Queued,
    /// Holding resources.
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with failure.
    Failed,
    /// Canceled before completion.
    Canceled,
}

impl JobState {
    /// Whether the job still counts as "pending" for occupancy purposes.
    pub fn is_pending(self) -> bool {
        matches!(self, JobState::Submitted | JobState::Queued)
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Canceled
        )
    }

    /// Whether `self -> to` appears in [`ALLOWED_TRANSITIONS`].
    pub fn can_transition_to(self, to: JobState) -> bool {
        ALLOWED_TRANSITIONS.contains(&(self, to))
    }
}

/// The complete job lifecycle state machine. Any state write the engine
/// performs must be one of these edges; writes happen only through
/// [`TrackedState::advance_to`], which enforces membership. The lint
/// pass (`cargo run -p lint`) additionally rejects raw `.state =`
/// assignments anywhere in this crate outside this module, so the table
/// below is, by construction, exhaustive over the code.
pub const ALLOWED_TRANSITIONS: &[(JobState, JobState)] = &[
    (JobState::Submitted, JobState::Queued),
    (JobState::Submitted, JobState::Canceled),
    (JobState::Queued, JobState::Running),
    (JobState::Queued, JobState::Canceled),
    (JobState::Running, JobState::Completed),
    (JobState::Running, JobState::Failed),
    (JobState::Running, JobState::Canceled),
];

/// A job's lifecycle state, writable only along [`ALLOWED_TRANSITIONS`].
///
/// Jobs always begin [`JobState::Submitted`]; there is deliberately no
/// way to construct an arbitrary state or assign one directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedState {
    current: JobState,
}

impl TrackedState {
    /// A freshly submitted job's state.
    pub fn submitted() -> TrackedState {
        TrackedState {
            current: JobState::Submitted,
        }
    }

    /// The current state.
    pub fn current(self) -> JobState {
        self.current
    }

    /// Moves to `to`, returning the previous state.
    ///
    /// # Panics
    /// Panics if `current -> to` is not in [`ALLOWED_TRANSITIONS`]: an
    /// illegal transition is a scheduler bug, never a recoverable input
    /// condition.
    pub fn advance_to(&mut self, to: JobState) -> JobState {
        assert!(
            self.current.can_transition_to(to),
            "illegal job state transition {:?} -> {to:?}",
            self.current
        );
        std::mem::replace(&mut self.current, to)
    }
}

impl Default for TrackedState {
    fn default() -> TrackedState {
        TrackedState::submitted()
    }
}

/// Lifecycle notifications returned by [`crate::SchedEngine::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// The matcher placed the job on resources at the given time.
    Placed { id: JobId, at: SimTime },
    /// The job released its resources.
    Finished {
        /// Which job.
        id: JobId,
        /// When it finished.
        at: SimTime,
        /// True for [`JobOutcome::Success`].
        success: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_properties() {
        assert!(JobClass::CgSim.uses_gpu());
        assert!(JobClass::AaSim.uses_gpu());
        assert!(!JobClass::CgSetup.uses_gpu());
        assert_eq!(JobClass::Continuum.label(), "continuum");
    }

    #[test]
    fn state_predicates() {
        assert!(JobState::Submitted.is_pending());
        assert!(JobState::Queued.is_pending());
        assert!(!JobState::Running.is_pending());
        assert!(JobState::Completed.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn transition_table_is_the_full_lifecycle() {
        // Non-terminal states can always move somewhere; terminal states
        // can never move at all.
        let all = [
            JobState::Submitted,
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Canceled,
        ];
        for from in all {
            let out_degree = all.iter().filter(|&&to| from.can_transition_to(to)).count();
            if from.is_terminal() {
                assert_eq!(out_degree, 0, "{from:?} must be terminal");
            } else {
                assert!(out_degree > 0, "{from:?} must not be a dead end");
                // Every live state can be canceled.
                assert!(from.can_transition_to(JobState::Canceled));
            }
        }
    }

    #[test]
    fn tracked_state_walks_legal_path() {
        let mut s = TrackedState::submitted();
        assert_eq!(s.current(), JobState::Submitted);
        assert_eq!(s.advance_to(JobState::Queued), JobState::Submitted);
        assert_eq!(s.advance_to(JobState::Running), JobState::Queued);
        assert_eq!(s.advance_to(JobState::Completed), JobState::Running);
        assert!(s.current().is_terminal());
    }

    #[test]
    #[should_panic(expected = "illegal job state transition")]
    fn tracked_state_rejects_illegal_edge() {
        let mut s = TrackedState::submitted();
        s.advance_to(JobState::Completed); // must pass through Queued/Running
    }

    #[test]
    fn failing_builder() {
        let spec = JobSpec::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_hours(1),
        )
        .failing();
        assert_eq!(spec.outcome, JobOutcome::Failure);
    }
}
