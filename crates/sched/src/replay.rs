//! Scheduler history: a submission log that replays exactly.
//!
//! §4.4: "key components (ML and job scheduling) also maintain elaborate
//! history files that may be replayed exactly, if necessary." The engine
//! is deterministic given a submission sequence, so replaying the log into
//! a fresh engine reproduces every placement and completion bit-for-bit —
//! the post-mortem debugging tool the paper leaned on at scale.

use resources::{Affinity, JobShape};
use simcore::{SimDuration, SimTime};

use crate::engine::SchedEngine;
use crate::job::{JobClass, JobId, JobOutcome, JobSpec};

/// One logged scheduler mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// A submission with its full spec.
    Submit {
        /// Submission time.
        at: SimTime,
        /// The submitted spec.
        spec: JobSpec,
    },
    /// A cancellation.
    Cancel {
        /// Which job (ids are deterministic: assigned in submit order).
        id: JobId,
    },
    /// A node failure.
    FailNode {
        /// When it failed.
        at: SimTime,
        /// Which node.
        node: u32,
    },
}

/// An append-only scheduler log with text serialization and replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedLog {
    events: Vec<SchedEvent>,
}

impl SchedLog {
    /// An empty log.
    pub fn new() -> SchedLog {
        SchedLog::default()
    }

    /// Records a submission.
    pub fn record_submit(&mut self, at: SimTime, spec: &JobSpec) {
        self.events.push(SchedEvent::Submit {
            at,
            spec: spec.clone(),
        });
    }

    /// Records a cancellation.
    pub fn record_cancel(&mut self, id: JobId) {
        self.events.push(SchedEvent::Cancel { id });
    }

    /// Records a node failure.
    pub fn record_fail_node(&mut self, at: SimTime, node: u32) {
        self.events.push(SchedEvent::FailNode { at, node });
    }

    /// The logged events in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the log into a fresh engine, then drains it to `horizon`.
    /// Returns the engine in its final state.
    pub fn replay(&self, mut engine: SchedEngine, horizon: SimTime) -> SchedEngine {
        for ev in &self.events {
            match ev {
                SchedEvent::Submit { at, spec } => {
                    engine.submit(spec.clone(), *at);
                }
                SchedEvent::Cancel { id } => {
                    // Cancels must observe the same intermediate state the
                    // original run saw; advancing to "now" is the caller's
                    // responsibility in live runs. For replay, cancels are
                    // applied in log order, which matches because ids are
                    // assigned in submit order.
                    engine.cancel(*id);
                }
                SchedEvent::FailNode { at, node } => {
                    engine.advance(*at);
                    engine.fail_node(*node, *at);
                }
            }
        }
        engine.advance(horizon);
        engine
    }

    /// Serializes to a line format:
    /// `S <at_us> <class> <nodes> <cores> <gpus> <affinity> <runtime_us> <outcome>`
    /// / `C <id>` / `F <at_us> <node>`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                SchedEvent::Submit { at, spec } => {
                    let aff = match spec.shape.affinity {
                        Affinity::None => "none",
                        Affinity::PackNearGpu => "gpu",
                        Affinity::PackCores => "cores",
                    };
                    let outcome = match spec.outcome {
                        JobOutcome::Success => "ok",
                        JobOutcome::Failure => "fail",
                    };
                    out.push_str(&format!(
                        "S {} {} {} {} {} {aff} {} {outcome}\n",
                        at.as_micros(),
                        spec.class.label(),
                        spec.shape.nodes,
                        spec.shape.cores_per_node,
                        spec.shape.gpus_per_node,
                        spec.runtime.as_micros(),
                    ));
                }
                SchedEvent::Cancel { id } => out.push_str(&format!("C {}\n", id.0)),
                SchedEvent::FailNode { at, node } => {
                    out.push_str(&format!("F {} {node}\n", at.as_micros()))
                }
            }
        }
        out
    }

    /// Parses the line format; `None` on malformed input.
    pub fn from_text(text: &str) -> Option<SchedLog> {
        let mut log = SchedLog::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(' ').collect();
            match parts.as_slice() {
                ["S", at, class, nodes, cores, gpus, aff, runtime, outcome] => {
                    let class = match *class {
                        "continuum" => JobClass::Continuum,
                        "cg-setup" => JobClass::CgSetup,
                        "cg-sim" => JobClass::CgSim,
                        "aa-setup" => JobClass::AaSetup,
                        "aa-sim" => JobClass::AaSim,
                        "other" => JobClass::Other,
                        _ => return None,
                    };
                    let affinity = match *aff {
                        "none" => Affinity::None,
                        "gpu" => Affinity::PackNearGpu,
                        "cores" => Affinity::PackCores,
                        _ => return None,
                    };
                    let shape = JobShape {
                        nodes: nodes.parse().ok()?,
                        cores_per_node: cores.parse().ok()?,
                        gpus_per_node: gpus.parse().ok()?,
                        affinity,
                    };
                    let mut spec = JobSpec::new(
                        class,
                        shape,
                        SimDuration::from_micros(runtime.parse().ok()?),
                    );
                    if *outcome == "fail" {
                        spec = spec.failing();
                    } else if *outcome != "ok" {
                        return None;
                    }
                    log.events.push(SchedEvent::Submit {
                        at: SimTime::from_micros(at.parse().ok()?),
                        spec,
                    });
                }
                ["C", id] => log.events.push(SchedEvent::Cancel {
                    id: JobId(id.parse().ok()?),
                }),
                ["F", at, node] => log.events.push(SchedEvent::FailNode {
                    at: SimTime::from_micros(at.parse().ok()?),
                    node: node.parse().ok()?,
                }),
                _ => return None,
            }
        }
        Some(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Costs, Coupling};
    use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};

    fn fresh_engine() -> SchedEngine {
        SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("t", 3, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Synchronous,
            Costs::summit_campaign(),
        )
    }

    fn scripted_log() -> SchedLog {
        let mut log = SchedLog::new();
        for i in 0..20u64 {
            log.record_submit(
                SimTime::from_secs(i * 30),
                &JobSpec::new(
                    if i % 3 == 0 {
                        JobClass::AaSim
                    } else {
                        JobClass::CgSim
                    },
                    JobShape::sim_standard(),
                    SimDuration::from_mins(10 + i),
                ),
            );
        }
        log.record_cancel(JobId(4));
        log.record_fail_node(SimTime::from_mins(15), 1);
        log.record_submit(
            SimTime::from_mins(16),
            &JobSpec::new(
                JobClass::CgSetup,
                JobShape::setup(),
                SimDuration::from_mins(5),
            )
            .failing(),
        );
        log
    }

    #[test]
    fn replay_reproduces_engine_state_exactly() {
        let log = scripted_log();
        let horizon = SimTime::from_hours(2);
        let a = log.replay(fresh_engine(), horizon);
        let b = log.replay(fresh_engine(), horizon);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.totals(), b.totals());
        assert_eq!(a.graph().gpu_usage(), b.graph().gpu_usage());
        for i in 0..21 {
            assert_eq!(a.state(JobId(i)), b.state(JobId(i)), "job {i}");
        }
        // The log actually did something interesting.
        assert!(a.stats().placed > 10);
        assert!(a.stats().canceled >= 1);
        assert!(a.stats().failed >= 1);
    }

    #[test]
    fn text_roundtrip_preserves_replay() {
        let log = scripted_log();
        let text = log.to_text();
        let parsed = SchedLog::from_text(&text).expect("parses");
        assert_eq!(parsed, log);
        let horizon = SimTime::from_hours(2);
        let a = log.replay(fresh_engine(), horizon);
        let b = parsed.replay(fresh_engine(), horizon);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(SchedLog::from_text("X nope").is_none());
        assert!(SchedLog::from_text("S 0 bogus-class 1 2 1 gpu 100 ok").is_none());
        assert!(SchedLog::from_text("S 0 cg-sim 1 2 1 sideways 100 ok").is_none());
        assert!(SchedLog::from_text("C not-a-number").is_none());
        assert_eq!(SchedLog::from_text("").unwrap().len(), 0);
    }
}
