//! The scheduling engine: queue manager (Q) + resource matcher (R).
//!
//! Queue ordering and backfill decisions live in the [`SchedPolicy`]
//! layer (`policy.rs`); this module owns the service-time mechanics
//! (ingest/match costs, coupling, completions) and executes whichever
//! candidate the policy nominates. The FCFS path is byte-identical to
//! the pre-policy-zoo engine, and that engine's monolithic service loop
//! is retained verbatim behind [`SchedEngine::set_legacy_fcfs`] as the
//! differential oracle (mirroring the linear-scan oracle kept for the
//! indexed matcher).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use resources::{Alloc, JobShape, MatchPolicy, ResourceGraph};
use simcore::{SimDuration, SimTime};
use trace::Tracer;

use crate::job::{JobClass, JobEvent, JobId, JobOutcome, JobSpec, JobState, TrackedState};
use crate::policy::SchedPolicy;
use crate::replay::SchedLog;

/// How Q and R communicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// Q and R share one service timeline and Q's inbox preempts R — the
    /// Flux version used in the campaign, whose 4000-node signature is
    /// chunky placement (Figure 6, right).
    Synchronous,
    /// Q and R run on independent timelines — the post-campaign fix.
    Asynchronous,
}

/// Virtual service costs of the scheduling pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Costs {
    /// Q-side cost of ingesting one submission (script write to GPFS, RPC,
    /// validation).
    pub submit: SimDuration,
    /// R-side cost per node inspected during matching (graph traversal).
    pub per_node_visit: SimDuration,
    /// R-side fixed cost of dispatching a placed job to its node.
    pub dispatch: SimDuration,
}

impl Costs {
    /// Calibrated so a 1000-node allocation sustains ~100 placements/min
    /// under the exhaustive policy (the paper's steady state) while a
    /// 4000-node allocation cannot.
    pub fn summit_campaign() -> Costs {
        Costs {
            submit: SimDuration::from_millis(250),
            per_node_visit: SimDuration::from_micros(250),
            dispatch: SimDuration::from_millis(50),
        }
    }

    /// Zero-cost scheduling (pure placement logic, used by unit tests).
    pub fn free() -> Costs {
        Costs {
            submit: SimDuration::ZERO,
            per_node_visit: SimDuration::ZERO,
            dispatch: SimDuration::ZERO,
        }
    }
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Total submissions accepted.
    pub submitted: u64,
    /// Jobs placed on resources.
    pub placed: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that finished as failures.
    pub failed: u64,
    /// Jobs canceled before finishing.
    pub canceled: u64,
    /// Matcher invocations that found no placement.
    pub match_misses: u64,
    /// Placements taken from behind a blocked head by a backfill policy
    /// (always zero under FCFS, fair-share, and hierarchical).
    pub backfills: u64,
}

/// Queue-wait aggregates for one job class: always collected, cheap to
/// keep (three words per class). Full per-placement samples for p50/p99
/// percentiles are opt-in via [`SchedEngine::collect_wait_samples`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassWait {
    /// Placements of this class.
    pub count: u64,
    /// Sum of queue waits (ready → placed) in microseconds.
    pub sum_us: u64,
    /// Largest single queue wait in microseconds.
    pub max_us: u64,
}

impl ClassWait {
    /// Mean queue wait in microseconds (0 when nothing placed).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    state: TrackedState,
    alloc: Option<Alloc>,
    /// When the matcher placed the job (for the traced run span).
    placed_at: Option<SimTime>,
    /// A hung job holds its resources but never completes on its own;
    /// its scheduled completion is suppressed until something cancels it.
    hung: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Ingest,
    /// Match the job at this queue position (0 = head; backfill and
    /// fair-share/hierarchical policies may nominate deeper positions).
    Match(usize),
}

/// Backfill lookahead: how many queued jobs get reservation estimates.
/// A conservative backfill candidate deeper than this cannot prove it
/// delays nobody, so the scan stops there; EASY only needs the head's
/// estimate and scans the whole queue.
const BF_WINDOW: usize = 64;

/// Reservation state cached while the head of the queue is blocked under
/// a backfill policy. Rebuilt lazily on every head miss and after every
/// backfill placement (queue positions shift), and dropped by any
/// release, node failure, or queue cancellation.
#[derive(Debug)]
struct BackfillState {
    /// `prefix[i]` = minimum estimated earliest start over queue
    /// positions `0..=i`. `None` means every job in that prefix is
    /// unsatisfiable even on an idle machine (an infinite bound — there
    /// is nothing a backfill could delay).
    prefix: Vec<Option<SimTime>>,
    /// Next queue position the backfill scan considers; misses advance
    /// it so one blocked episode charges each candidate at most once.
    cursor: usize,
    /// Aggregate free `(nodes, gpus, cores)` when the state was built —
    /// the cheap feasibility screen a candidate must pass before the
    /// matcher is charged a graph traversal for it.
    free: (u64, u64, u64),
}

/// Minimum of two "estimated start" bounds where `None` = infinity.
fn min_bound(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// Earliest time `shape` could fit in the *aggregate* resource profile:
/// current free totals plus scheduled releases in time order. Aggregate
/// counts are necessary but not sufficient for a real placement
/// (fragmentation, affinity), so the estimate is a lower bound on any
/// real fit time — which is exactly the direction backfill safety needs:
/// a job that ends by this estimate cannot delay the estimated job.
/// `None` means the demand exceeds even the fully-released machine
/// (assuming the drained set stays as it is).
fn estimate_start(
    shape: &JobShape,
    free: (u64, u64, u64),
    releases: &[(SimTime, JobId, u64, u64)],
) -> Option<SimTime> {
    let need_nodes = shape.nodes as u64;
    let need_g = shape.nodes as u64 * shape.gpus_per_node as u64;
    let need_c = shape.nodes as u64 * shape.cores_per_node as u64;
    if free.0 < need_nodes {
        return None;
    }
    let (mut g, mut c) = (free.1, free.2);
    if g >= need_g && c >= need_c {
        return Some(SimTime::ZERO);
    }
    for &(t, _, dg, dc) in releases {
        g += dg;
        c += dc;
        if g >= need_g && c >= need_c {
            return Some(t);
        }
    }
    None
}

/// Whether `shape` passes the aggregate-availability screen right now.
fn feasible_now(shape: &JobShape, free: (u64, u64, u64)) -> bool {
    free.0 >= shape.nodes as u64
        && free.1 >= shape.nodes as u64 * shape.gpus_per_node as u64
        && free.2 >= shape.nodes as u64 * shape.cores_per_node as u64
}

/// Which hierarchical child instance a class routes to: GPU classes on
/// child 0 (the low node range), CPU classes on child 1 (the high range).
fn hier_child(class: JobClass) -> usize {
    if class.uses_gpu() {
        0
    } else {
        1
    }
}

/// The single-user workload manager (see crate docs).
#[derive(Debug)]
pub struct SchedEngine {
    graph: ResourceGraph,
    policy: MatchPolicy,
    sched_policy: SchedPolicy,
    coupling: Coupling,
    costs: Costs,
    /// Route `advance`/`next_wakeup` through the retained pre-refactor
    /// monolith (FCFS only) — the differential oracle.
    legacy_fcfs: bool,
    next_id: u64,
    /// Ordered by id so any iteration visits jobs in submission order —
    /// part of the determinism contract (no HashMap iteration in
    /// coordination paths). Hot paths go through the `running`/`residency`
    /// indexes instead of scanning this ever-growing table.
    jobs: BTreeMap<JobId, JobRecord>,
    /// Submissions not yet ingested by Q: (submit time, id).
    inbox: VecDeque<(SimTime, JobId)>,
    /// Ingested jobs in FCFS order: (time the job entered the queue, id).
    /// Every policy keeps this queue in ingestion (= submission) order;
    /// policies differ only in which *position* they nominate next, so
    /// equal-priority ties always break by submission sequence, never by
    /// map iteration order.
    ready: VecDeque<(SimTime, JobId)>,
    /// Scheduled resource releases: (finish time, id).
    completions: BinaryHeap<Reverse<(SimTime, JobId)>>,
    /// Q server availability (shared server under synchronous coupling).
    q_free_at: SimTime,
    /// R server availability (asynchronous coupling only).
    r_free_at: SimTime,
    /// The policy's primary candidate failed to match; wait for a release
    /// before retrying (FCFS/backfill: the queue head; fair-share: the
    /// least-consumed class head).
    head_blocked: bool,
    /// Backfill reservation state, present iff `head_blocked` under a
    /// backfill policy.
    bf: Option<BackfillState>,
    /// Hierarchical per-child blocked flags (GPU child, CPU child).
    h_blocked: [bool; 2],
    /// First node of the CPU child's range under the hierarchical
    /// policy: GPU classes match in `[0, hier_split)`, CPU classes in
    /// `[hier_split, nodes)`.
    hier_split: usize,
    /// Fair-share accounting: node-microseconds consumed per class,
    /// accrued when resources are *released* (completion, crash). A
    /// cancel carries no timestamp, so canceled holds accrue nothing.
    consumed: BTreeMap<JobClass, u128>,
    /// (running, pending) per class, iterated in class order.
    class_counts: BTreeMap<JobClass, (u64, u64)>,
    /// Every job currently in [`JobState::Running`] (hung jobs included),
    /// keyed `(class, id)` so a class's running set is one ordered range.
    /// Replaces whole-`jobs`-table scans, which grow with every job ever
    /// submitted because terminal records are retained.
    running: BTreeSet<(JobClass, JobId)>,
    /// Running jobs holding resources on each node, in id (= submission)
    /// order — the `fail_node` victim index.
    residency: BTreeMap<resources::NodeId, BTreeSet<JobId>>,
    /// Nodes already reported failed, so a repeated `fail_node` on a
    /// still-drained node is a no-op instead of double-counting.
    failed_nodes: BTreeSet<resources::NodeId>,
    stats: SchedStats,
    /// Per-class queue-wait aggregates (count, sum, max) for every
    /// placement.
    wait_by_class: BTreeMap<JobClass, ClassWait>,
    /// Full queue-wait samples in placement order, opt-in (benchmarks
    /// need percentiles; campaigns keep this off).
    wait_samples: Option<Vec<u64>>,
    /// (backfilled job, head it was backfilled around), opt-in — the
    /// instrumentation behind the "EASY never delays the head" proptest.
    bf_pairs: Option<Vec<(JobId, JobId)>>,
    /// Opt-in submission/cancel/fail log (§4.4 history files).
    recorder: Option<SchedLog>,
    /// Events produced outside `advance` (e.g. node failures), delivered
    /// on the next poll.
    pending_events: Vec<JobEvent>,
    /// Trace sink for job-lifecycle records (disabled by default).
    tracer: Tracer,
}

impl SchedEngine {
    /// Creates an engine over `graph` with the given placement policy and
    /// coupling. The queue policy defaults to [`SchedPolicy::Fcfs`]; set
    /// another member of the zoo with [`SchedEngine::set_sched_policy`]
    /// before submitting work.
    pub fn new(
        graph: ResourceGraph,
        policy: MatchPolicy,
        coupling: Coupling,
        costs: Costs,
    ) -> SchedEngine {
        let nodes = graph.spec().nodes as usize;
        SchedEngine {
            graph,
            policy,
            sched_policy: SchedPolicy::Fcfs,
            coupling,
            costs,
            legacy_fcfs: false,
            next_id: 0,
            jobs: BTreeMap::new(),
            inbox: VecDeque::new(),
            ready: VecDeque::new(),
            completions: BinaryHeap::new(),
            q_free_at: SimTime::ZERO,
            r_free_at: SimTime::ZERO,
            head_blocked: false,
            bf: None,
            h_blocked: [false; 2],
            // 3/4 of the machine to the GPU child, the rest to the CPU
            // child (sims dominate the mix; setup/continuum work is the
            // minority the hierarchy fences off).
            hier_split: nodes - nodes / 4,
            consumed: BTreeMap::new(),
            class_counts: BTreeMap::new(),
            running: BTreeSet::new(),
            residency: BTreeMap::new(),
            failed_nodes: BTreeSet::new(),
            stats: SchedStats::default(),
            wait_by_class: BTreeMap::new(),
            wait_samples: None,
            bf_pairs: None,
            recorder: None,
            pending_events: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; the engine records job-lifecycle events and
    /// scheduling-service spans on it. The default handle is a no-op.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Selects the queue policy. Call before submitting work: switching
    /// policies mid-stream is not part of the model (blocked-state and
    /// reservation caches are policy-specific).
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched_policy = policy;
        self.unblock();
    }

    /// The active queue policy.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched_policy
    }

    /// Routes service selection through the retained pre-refactor FCFS
    /// monolith — the differential oracle for the policy split. Only
    /// meaningful under [`SchedPolicy::Fcfs`]; same-seed runs must trace
    /// byte-identically with this on or off.
    pub fn set_legacy_fcfs(&mut self, on: bool) {
        debug_assert!(
            !on || self.sched_policy == SchedPolicy::Fcfs,
            "the legacy path models FCFS only"
        );
        self.legacy_fcfs = on;
    }

    /// Whether the retained legacy FCFS path is active.
    pub fn legacy_fcfs(&self) -> bool {
        self.legacy_fcfs
    }

    /// Starts (or stops) recording submissions, cancels, and node
    /// failures into a [`SchedLog`] — the paper's §4.4 replayable
    /// history file. Off by default.
    pub fn set_recording(&mut self, on: bool) {
        if on {
            if self.recorder.is_none() {
                self.recorder = Some(SchedLog::new());
            }
        } else {
            self.recorder = None;
        }
    }

    /// The recorded log so far, if recording.
    pub fn log(&self) -> Option<&SchedLog> {
        self.recorder.as_ref()
    }

    /// Takes the recorded log, leaving recording on with a fresh log if
    /// it was on.
    pub fn take_log(&mut self) -> Option<SchedLog> {
        let was_on = self.recorder.is_some();
        let log = self.recorder.take();
        if was_on {
            self.recorder = Some(SchedLog::new());
        }
        log
    }

    /// Starts collecting one queue-wait sample per placement (for
    /// percentile reporting in benchmarks). Off by default: the sample
    /// vector grows with every placement.
    pub fn collect_wait_samples(&mut self, on: bool) {
        if on {
            if self.wait_samples.is_none() {
                self.wait_samples = Some(Vec::new());
            }
        } else {
            self.wait_samples = None;
        }
    }

    /// Queue-wait samples (microseconds) in placement order; empty when
    /// collection is off.
    pub fn wait_samples(&self) -> &[u64] {
        self.wait_samples.as_deref().unwrap_or(&[])
    }

    /// Starts collecting (backfilled job, blocked head) pairs — proptest
    /// instrumentation for the no-head-delay invariant. Off by default.
    pub fn collect_backfill_pairs(&mut self, on: bool) {
        if on {
            if self.bf_pairs.is_none() {
                self.bf_pairs = Some(Vec::new());
            }
        } else {
            self.bf_pairs = None;
        }
    }

    /// Recorded (backfilled job, head) pairs; empty when collection is
    /// off.
    pub fn backfill_pairs(&self) -> &[(JobId, JobId)] {
        self.bf_pairs.as_deref().unwrap_or(&[])
    }

    /// Per-class queue-wait aggregates, in class order.
    pub fn class_waits(&self) -> Vec<(JobClass, ClassWait)> {
        self.wait_by_class.iter().map(|(&c, &w)| (c, w)).collect()
    }

    /// Node-microseconds consumed by a class so far (fair-share key;
    /// accrued at release).
    pub fn consumed_node_micros(&self, class: JobClass) -> u128 {
        self.consumed.get(&class).copied().unwrap_or(0)
    }

    /// Simulates a compute-node failure at time `at`: the node is drained
    /// (no new placements — Flux "has full support to detect node failures
    /// and to drain the failed nodes") and every job holding resources on
    /// it crashes, reported as a failed [`JobEvent::Finished`] on the next
    /// poll so trackers can resubmit. Returns the crashed job ids.
    pub fn fail_node(&mut self, node: resources::NodeId, at: SimTime) -> Vec<JobId> {
        // A node that already failed and is still drained cannot fail
        // again: re-reporting it would double-count the failure in the
        // trace and the `sched.node_failures` counter. A repaired
        // (undrained) node is eligible to fail anew.
        if self.failed_nodes.contains(&node) && self.graph.is_drained(node) {
            return Vec::new();
        }
        if let Some(log) = &mut self.recorder {
            log.record_fail_node(at, node);
        }
        self.failed_nodes.insert(node);
        self.graph.drain(node);
        // The residency index holds exactly the running jobs with a slice
        // on this node, already in id (= submission) order.
        let victims: Vec<JobId> = self
            .residency
            .get(&node)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        for &id in &victims {
            let Some(rec) = self.jobs.get_mut(&id) else {
                continue;
            };
            let alloc = rec.alloc.take();
            if let Some(alloc) = &alloc {
                self.graph.release(alloc);
            }
            rec.state.advance_to(JobState::Failed);
            let class = rec.spec.class;
            if let Some(placed) = rec.placed_at.take() {
                let slices = alloc.as_ref().map_or(0, |a| a.slices.len()) as u128;
                *self.consumed.entry(class).or_insert(0) +=
                    at.since(placed).as_micros() as u128 * slices;
            }
            self.unindex_running(id, class, alloc.as_ref());
            self.counts_mut(class).0 -= 1;
            self.stats.failed += 1;
            self.pending_events.push(JobEvent::Finished {
                id,
                at,
                success: false,
            });
        }
        // Resources changed: blocked candidates may fit elsewhere now.
        self.unblock();
        self.tracer.instant_at(
            at,
            "sched",
            "node.failed",
            &[
                ("node", u64::from(node).into()),
                ("count", victims.len().into()),
            ],
        );
        self.tracer.counter_add("sched.node_failures", 1);
        victims
    }

    /// Hangs the lowest-id running job of `class` at time `at`: the job
    /// keeps holding its allocation but its scheduled completion is
    /// suppressed, so it never finishes on its own. Only a cancel (e.g.
    /// a workflow-manager timeout) can reclaim the resources — this is
    /// the "job hangs" failure of the paper's §4.4 resilience model.
    /// Returns the hung job's id, or `None` if no eligible job is
    /// running.
    pub fn hang_running(&mut self, class: JobClass, at: SimTime) -> Option<JobId> {
        // The running index is ordered by (class, id): one range walk
        // finds the lowest-id running job of the class, skipping only
        // already-hung entries.
        let id = self
            .running
            .range((class, JobId(0))..)
            .take_while(|&&(c, _)| c == class)
            .map(|&(_, id)| id)
            .find(|id| self.jobs.get(id).is_some_and(|rec| !rec.hung))?;
        if let Some(rec) = self.jobs.get_mut(&id) {
            rec.hung = true;
        }
        self.tracer.instant_at(
            at,
            "sched",
            "job.hung",
            &[("job", id.0.into()), ("class", class.label().into())],
        );
        self.tracer.counter_add("sched.hung", 1);
        Some(id)
    }

    /// Events produced outside `advance` (node-failure crashes) that have
    /// not yet been delivered to a poller. A workflow manager that dies
    /// between `fail_node` and its next poll loses exactly these.
    pub fn undelivered_events(&self) -> usize {
        self.pending_events.len()
    }

    /// The resource graph (for occupancy sampling).
    pub fn graph(&self) -> &ResourceGraph {
        &self.graph
    }

    /// Mutable graph access (drain/undrain on node failure).
    pub fn graph_mut(&mut self) -> &mut ResourceGraph {
        &mut self.graph
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// (running, pending) for one job class.
    pub fn class_counts(&self, class: JobClass) -> (u64, u64) {
        self.class_counts.get(&class).copied().unwrap_or((0, 0))
    }

    /// (running, pending) over all classes.
    pub fn totals(&self) -> (u64, u64) {
        self.class_counts
            .values()
            .fold((0, 0), |(r, p), &(cr, cp)| (r + cr, p + cp))
    }

    /// Current state of a job.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(&id).map(|j| j.state.current())
    }

    /// The class a job was submitted with.
    pub fn class(&self, id: JobId) -> Option<JobClass> {
        self.jobs.get(&id).map(|j| j.spec.class)
    }

    /// Submits a job at time `at`. The job enters Q's inbox and will be
    /// ingested, queued, and matched by subsequent [`SchedEngine::advance`]
    /// calls.
    pub fn submit(&mut self, spec: JobSpec, at: SimTime) -> JobId {
        if let Some(log) = &mut self.recorder {
            log.record_submit(at, &spec);
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        let class = spec.class;
        self.jobs.insert(
            id,
            JobRecord {
                spec,
                state: TrackedState::submitted(),
                alloc: None,
                placed_at: None,
                hung: false,
            },
        );
        self.inbox.push_back((at, id));
        self.counts_mut(class).1 += 1;
        self.stats.submitted += 1;
        self.tracer.instant_at(
            at,
            "sched",
            "job.submit",
            &[("job", id.0.into()), ("class", class.label().into())],
        );
        self.tracer.counter_add("sched.submitted", 1);
        id
    }

    /// Cancels a job; running jobs release their resources immediately.
    /// Returns false if the job was already terminal or unknown.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(state) = self.jobs.get(&id).map(|rec| rec.state.current()) else {
            return false;
        };
        match state {
            JobState::Submitted => {
                self.inbox.retain(|&(_, j)| j != id);
            }
            JobState::Queued => {
                // FCFS unblocks only when the blocked head itself goes
                // away (the pre-refactor behavior, kept byte-identical);
                // the other policies hold per-position state, so any
                // queue removal invalidates it.
                if self.ready.front().map(|&(_, j)| j) == Some(id)
                    || self.sched_policy != SchedPolicy::Fcfs
                {
                    self.unblock();
                }
                self.ready.retain(|&(_, j)| j != id);
            }
            JobState::Running => {}
            _ => return false,
        }
        if let Some(log) = &mut self.recorder {
            log.record_cancel(id);
        }
        let Some(rec) = self.jobs.get_mut(&id) else {
            return false;
        };
        let class = rec.spec.class;
        if state == JobState::Running {
            let alloc = rec.alloc.take();
            if let Some(alloc) = &alloc {
                self.graph.release(alloc);
            }
            rec.state.advance_to(JobState::Canceled);
            self.unindex_running(id, class, alloc.as_ref());
            self.unblock();
        } else {
            rec.state.advance_to(JobState::Canceled);
        }
        let counts = self.counts_mut(class);
        if state == JobState::Running {
            counts.0 -= 1;
        } else {
            counts.1 -= 1;
        }
        self.stats.canceled += 1;
        self.tracer.instant(
            "sched",
            "job.canceled",
            &[("job", id.0.into()), ("class", class.label().into())],
        );
        self.tracer.counter_add("sched.canceled", 1);
        true
    }

    /// The earliest future instant at which [`SchedEngine::advance`] could
    /// make progress, or `None` when the engine is fully idle (no pending
    /// service, no scheduled completions). An event-driven driver jumps
    /// its clock here instead of polling on a fixed tick.
    ///
    /// Completions fire when `advance(now)` sees `t <= now`, so their own
    /// timestamp is returned; Q/R service starts only strictly *before*
    /// `now`, so service start times are nudged one microsecond late. The
    /// returned instant may be conservative (a hung or canceled job's
    /// stale completion entry wakes the driver once, harmlessly): the
    /// contract is *no progress is possible before it*, not that work is
    /// guaranteed exactly at it.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.legacy_fcfs {
            return self.next_wakeup_legacy();
        }
        let eps = SimDuration::from_micros(1);
        let completion = self.completions.peek().map(|Reverse((t, _))| *t);
        let ingest = self
            .inbox
            .front()
            .map(|&(sub_t, _)| self.q_free_at.max(sub_t) + eps);
        let matcher = self
            .match_candidate()
            .map(|(ready_at, _)| self.matcher_server().max(ready_at) + eps);
        [completion, ingest, matcher].into_iter().flatten().min()
    }

    /// Processes all scheduler work whose *start* time is before `now`,
    /// interleaving Q/R service with resource releases in time order.
    /// Returned events carry their own timestamps; an action started just
    /// before `now` may finish (and be reported) slightly after it.
    pub fn advance(&mut self, now: SimTime) -> Vec<JobEvent> {
        let mut events = std::mem::take(&mut self.pending_events);
        // Retry a blocked FCFS head once per poll (the legacy engine's
        // behavior, kept byte-identical): resources may have changed
        // outside the engine's view (undrained nodes, etc.). The other
        // policies must NOT reset here — their blocked state is cleared
        // by releases, failures, and cancels instead. Resetting on every
        // advance lets a permanently-unplaceable candidate re-buy its
        // match cost at every matcher wakeup: the nomination schedules a
        // wakeup, the wakeup's advance clears the block and re-misses,
        // and the loop walks virtual time in match-cost steps (observed
        // as ~28M driver iterations for a 4-hour hierarchical run).
        if self.sched_policy == SchedPolicy::Fcfs {
            self.unblock();
        }
        loop {
            let next_completion = self
                .completions
                .peek()
                .map(|Reverse((t, _))| *t)
                .filter(|&t| t <= now);
            let next_service = if self.legacy_fcfs {
                self.next_service_legacy(now)
            } else {
                self.next_service(now)
            };
            match (next_completion, next_service) {
                (None, None) => break,
                (Some(tc), Some((ts, _))) if tc <= ts => self.run_completion(&mut events),
                (Some(_), None) => self.run_completion(&mut events),
                (None, Some((ts, act))) | (Some(_), Some((ts, act))) => {
                    if self.legacy_fcfs {
                        self.run_service_legacy(ts, act, &mut events)
                    } else {
                        self.run_service(ts, act, &mut events)
                    }
                }
            }
        }
        events
    }

    /// The matcher's service timeline under the active coupling.
    fn matcher_server(&self) -> SimTime {
        match self.coupling {
            Coupling::Synchronous => self.q_free_at,
            Coupling::Asynchronous => self.r_free_at,
        }
    }

    /// The queue position the active policy nominates for the matcher,
    /// with the time that job entered the queue. `None` when the policy
    /// is blocked (nothing eligible until a release).
    fn match_candidate(&self) -> Option<(SimTime, usize)> {
        match self.sched_policy {
            SchedPolicy::Fcfs => match (self.ready.front(), self.head_blocked) {
                (Some(&(ready_at, _)), false) => Some((ready_at, 0)),
                _ => None,
            },
            SchedPolicy::BackfillEasy | SchedPolicy::BackfillConservative => {
                if !self.head_blocked {
                    return self.ready.front().map(|&(t, _)| (t, 0));
                }
                let bf = self.bf.as_ref()?;
                let conservative = self.sched_policy == SchedPolicy::BackfillConservative;
                let server = self.matcher_server();
                for pos in bf.cursor.max(1)..self.ready.len() {
                    let limit = if conservative {
                        if pos > bf.prefix.len() {
                            // Beyond the reservation window nothing can be
                            // proven safe; stop scanning.
                            break;
                        }
                        bf.prefix[pos - 1]
                    } else {
                        bf.prefix.first().copied().flatten()
                    };
                    let (ready_at, id) = self.ready[pos];
                    let Some(rec) = self.jobs.get(&id) else {
                        continue;
                    };
                    // Safe to run out of order iff the candidate returns
                    // everything it takes by the protected jobs' earliest
                    // possible start. (Under modeled service costs the
                    // dispatch/visit overhead after `t_start` is not
                    // charged against the bound; under `Costs::free` the
                    // comparison is exact — see `policy_props.rs`.)
                    let t_start = server.max(ready_at);
                    let time_ok = limit.is_none_or(|l| t_start + rec.spec.runtime <= l);
                    if time_ok && feasible_now(&rec.spec.shape, bf.free) {
                        return Some((ready_at, pos));
                    }
                }
                None
            }
            SchedPolicy::FairShare => {
                if self.head_blocked {
                    return None;
                }
                // One queue walk: the first (oldest) position of each
                // class, then the class with the least consumed
                // node-time wins. Ties break by queue position — the
                // submission sequence — never by class declaration
                // order.
                let mut seen: BTreeSet<JobClass> = BTreeSet::new();
                let mut best: Option<(u128, usize, SimTime)> = None;
                for (pos, &(ready_at, id)) in self.ready.iter().enumerate() {
                    let Some(class) = self.jobs.get(&id).map(|r| r.spec.class) else {
                        continue;
                    };
                    if !seen.insert(class) {
                        continue;
                    }
                    let used = self.consumed.get(&class).copied().unwrap_or(0);
                    if best.is_none_or(|(bu, bp, _)| (used, pos) < (bu, bp)) {
                        best = Some((used, pos, ready_at));
                    }
                    if seen.len() >= 6 {
                        break; // every class represented
                    }
                }
                best.map(|(_, pos, ready_at)| (ready_at, pos))
            }
            SchedPolicy::Hierarchical => {
                // Lowest queue position whose child instance is not
                // blocked — a stuck wide CPU job never stalls GPU work.
                for (pos, &(ready_at, id)) in self.ready.iter().enumerate() {
                    let Some(class) = self.jobs.get(&id).map(|r| r.spec.class) else {
                        continue;
                    };
                    if !self.h_blocked[hier_child(class)] {
                        return Some((ready_at, pos));
                    }
                }
                None
            }
        }
    }

    /// The node range owned by a hierarchical child instance.
    fn hier_range(&self, child: usize) -> (usize, usize) {
        if child == 0 {
            (0, self.hier_split)
        } else {
            (self.hier_split, self.graph.spec().nodes as usize)
        }
    }

    /// Builds backfill reservation state: scheduled releases from the
    /// completions heap (stale entries filtered by job state) plus
    /// aggregate free totals, folded into earliest-start estimates for
    /// the first [`BF_WINDOW`] queued jobs.
    fn compute_bf_state(&self, cursor: usize) -> BackfillState {
        let free = self.graph.free_totals();
        let mut releases: Vec<(SimTime, JobId, u64, u64)> = self
            .completions
            .iter()
            .filter_map(|&Reverse((t, id))| {
                let rec = self.jobs.get(&id)?;
                if rec.state.current() != JobState::Running || rec.hung {
                    return None;
                }
                let alloc = rec.alloc.as_ref()?;
                Some((t, id, alloc.gpus(), alloc.cores()))
            })
            .collect();
        releases.sort_unstable_by_key(|&(t, id, _, _)| (t, id));
        let mut prefix = Vec::new();
        let mut run: Option<SimTime> = None;
        for pos in 0..self.ready.len().min(BF_WINDOW) {
            let (_, id) = self.ready[pos];
            let mut est = self
                .jobs
                .get(&id)
                .and_then(|rec| estimate_start(&rec.spec.shape, free, &releases));
            if pos == 0 {
                // A backfill episode only opens after the head fails a
                // *real* topology match, so an aggregate estimate of
                // "fits now" is fragmentation noise (enough cores in
                // total, no node with a whole slice). The pool cannot
                // grow before the first scheduled release, so that
                // release is still a sound lower bound — without it the
                // window collapses to zero width and both backfill
                // policies silently degrade to FCFS. No pending release
                // means no bound can be proven at all.
                est = est.and_then(|t| releases.first().map(|&(r, ..)| t.max(r)));
            }
            run = if pos == 0 { est } else { min_bound(run, est) };
            prefix.push(run);
        }
        BackfillState {
            prefix,
            cursor,
            free,
        }
    }

    /// Clears every policy's blocked state: a release, a repaired or
    /// failed node, or a queue mutation may have changed what fits, and
    /// cached backfill reservations are no longer valid.
    fn unblock(&mut self) {
        self.head_blocked = false;
        self.bf = None;
        self.h_blocked = [false; 2];
    }

    /// Determines the next Q/R action and its start time, if one can start
    /// strictly before `now`.
    fn next_service(&self, now: SimTime) -> Option<(SimTime, Action)> {
        let ingest = self.inbox.front().map(|&(sub_t, _)| {
            let server = self.q_free_at;
            (server.max(sub_t), Action::Ingest)
        });
        let matcher = self.match_candidate().map(|(ready_at, pos)| {
            // The matcher cannot start before the candidate entered the
            // queue (an idle server does not work in the past).
            (self.matcher_server().max(ready_at), Action::Match(pos))
        });
        let candidate = match (ingest, matcher) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            // Tie goes to ingestion: under synchronous coupling Q's inbox
            // preempts R, which is the bottleneck the paper describes.
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
        };
        candidate.filter(|&(t, _)| t < now)
    }

    fn run_completion(&mut self, events: &mut Vec<JobEvent>) {
        let Some(Reverse((t, id))) = self.completions.pop() else {
            return;
        };
        let Some(rec) = self.jobs.get_mut(&id) else {
            return;
        };
        if rec.state.current() != JobState::Running {
            return; // canceled while running; resources already released
        }
        if rec.hung {
            return; // hung jobs never complete; only a cancel frees them
        }
        let alloc = rec.alloc.take();
        if let Some(alloc) = &alloc {
            self.graph.release(alloc);
        }
        let success = rec.spec.outcome == JobOutcome::Success;
        rec.state.advance_to(if success {
            JobState::Completed
        } else {
            JobState::Failed
        });
        let class = rec.spec.class;
        let placed_at = rec.placed_at.take();
        if let Some(p) = placed_at {
            let slices = alloc.as_ref().map_or(0, |a| a.slices.len()) as u128;
            *self.consumed.entry(class).or_insert(0) += t.since(p).as_micros() as u128 * slices;
        }
        self.unindex_running(id, class, alloc.as_ref());
        self.counts_mut(class).0 -= 1;
        if success {
            self.stats.completed += 1;
            self.tracer.counter_add("sched.completed", 1);
        } else {
            self.stats.failed += 1;
            self.tracer.counter_add("sched.failed", 1);
        }
        if let Some(p) = placed_at {
            self.tracer.span_at(
                p,
                t.since(p),
                "sched",
                "job.run",
                &[("job", id.0.into()), ("class", class.label().into())],
            );
        }
        self.tracer.instant_at(
            t,
            "sched",
            "job.finished",
            &[("job", id.0.into()), ("success", success.into())],
        );
        // A release may unblock any policy's waiting candidates.
        self.unblock();
        events.push(JobEvent::Finished { id, at: t, success });
    }

    fn run_service(&mut self, start: SimTime, action: Action, events: &mut Vec<JobEvent>) {
        match action {
            Action::Ingest => {
                let Some((_, id)) = self.inbox.pop_front() else {
                    return;
                };
                let end = start + self.costs.submit;
                self.q_free_at = end;
                if let Some(rec) = self.jobs.get_mut(&id) {
                    rec.state.advance_to(JobState::Queued);
                    self.ready.push_back((end, id));
                    self.tracer.span_at(
                        start,
                        self.costs.submit,
                        "sched",
                        "svc.ingest",
                        &[("job", id.0.into())],
                    );
                }
            }
            Action::Match(pos) => {
                let Some(&(ready_at, id)) = self.ready.get(pos) else {
                    return;
                };
                let Some((shape, job_class)) = self
                    .jobs
                    .get(&id)
                    .map(|rec| (rec.spec.shape, rec.spec.class))
                else {
                    return;
                };
                let placed = if self.sched_policy == SchedPolicy::Hierarchical {
                    let (lo, hi) = self.hier_range(hier_child(job_class));
                    self.graph.try_alloc_range(&shape, self.policy, lo, hi)
                } else {
                    self.graph.try_alloc(&shape, self.policy)
                };
                let visited = self.graph.visited_last();
                let cost = self.costs.per_node_visit * visited
                    + if placed.is_some() {
                        self.costs.dispatch
                    } else {
                        SimDuration::ZERO
                    };
                let end = start + cost;
                match self.coupling {
                    Coupling::Synchronous => self.q_free_at = end,
                    Coupling::Asynchronous => self.r_free_at = end,
                }
                self.tracer.span_at(
                    start,
                    cost,
                    "sched",
                    "svc.match",
                    &[("job", id.0.into()), ("visited", visited.into())],
                );
                self.tracer.observe("sched.visited_per_match", visited);
                match placed {
                    Some(alloc) => {
                        self.ready.remove(pos);
                        let Some(rec) = self.jobs.get_mut(&id) else {
                            self.graph.release(&alloc);
                            return;
                        };
                        rec.alloc = Some(alloc);
                        rec.state.advance_to(JobState::Running);
                        rec.placed_at = Some(end);
                        let runtime = rec.spec.runtime;
                        let class = rec.spec.class;
                        let counts = self.counts_mut(class);
                        counts.0 += 1;
                        counts.1 -= 1;
                        self.stats.placed += 1;
                        self.running.insert((class, id));
                        if let Some(alloc) = self.jobs.get(&id).and_then(|r| r.alloc.as_ref()) {
                            for s in &alloc.slices {
                                self.residency.entry(s.node).or_default().insert(id);
                            }
                        }
                        self.completions.push(Reverse((end + runtime, id)));
                        self.tracer.instant_at(
                            end,
                            "sched",
                            "job.placed",
                            &[("job", id.0.into()), ("class", class.label().into())],
                        );
                        self.tracer.counter_add("sched.placed", 1);
                        self.tracer
                            .observe("sched.queue_wait_us", end.since(ready_at).as_micros());
                        let wait_us = end.since(ready_at).as_micros();
                        let w = self.wait_by_class.entry(class).or_default();
                        w.count += 1;
                        w.sum_us += wait_us;
                        w.max_us = w.max_us.max(wait_us);
                        if let Some(samples) = &mut self.wait_samples {
                            samples.push(wait_us);
                        }
                        if pos > 0 && self.sched_policy.is_backfill() {
                            self.stats.backfills += 1;
                            self.tracer.counter_add("sched.backfills", 1);
                            if let Some(pairs) = &mut self.bf_pairs {
                                if let Some(&(_, head)) = self.ready.front() {
                                    pairs.push((id, head));
                                }
                            }
                            // Queue positions shifted and the free pool
                            // shrank: rebuild the reservation state,
                            // resuming the scan where the removal left it.
                            self.bf = Some(self.compute_bf_state(pos));
                        }
                        events.push(JobEvent::Placed { id, at: end });
                    }
                    None => {
                        match self.sched_policy {
                            // Strict FCFS, no backfilling: the head blocks
                            // the queue until resources are released.
                            SchedPolicy::Fcfs => self.head_blocked = true,
                            SchedPolicy::BackfillEasy | SchedPolicy::BackfillConservative => {
                                if pos == 0 {
                                    // Head miss: block it and open a
                                    // backfill episode with fresh
                                    // reservation estimates.
                                    self.head_blocked = true;
                                    self.bf = Some(self.compute_bf_state(1));
                                } else if let Some(bf) = &mut self.bf {
                                    // A screened candidate still failed on
                                    // real topology; never re-try it this
                                    // episode.
                                    bf.cursor = pos + 1;
                                }
                            }
                            // The least-consumed class's head missed; a
                            // cross-class skip here would let hungry small
                            // classes starve it, so the queue waits.
                            SchedPolicy::FairShare => self.head_blocked = true,
                            // Only the candidate's own child instance
                            // blocks; the other child keeps scheduling.
                            SchedPolicy::Hierarchical => {
                                self.h_blocked[hier_child(job_class)] = true
                            }
                        }
                        self.stats.match_misses += 1;
                        self.tracer.counter_add("sched.match_misses", 1);
                    }
                }
            }
        }
    }

    // --- Retained pre-refactor FCFS path (differential oracle) ---------
    //
    // These three methods are verbatim copies of the engine's service
    // loop from before the policy split, dispatched by `legacy_fcfs`.
    // They model strict FCFS/no-backfill only; `policy_props.rs` pins
    // the refactored FCFS path byte-identical against them, the same
    // way the linear matcher pins the segment-tree index.

    fn next_wakeup_legacy(&self) -> Option<SimTime> {
        let eps = SimDuration::from_micros(1);
        let completion = self.completions.peek().map(|Reverse((t, _))| *t);
        let ingest = self
            .inbox
            .front()
            .map(|&(sub_t, _)| self.q_free_at.max(sub_t) + eps);
        let matcher = match (self.ready.front(), self.head_blocked) {
            (Some(&(ready_at, _)), false) => {
                let server = match self.coupling {
                    Coupling::Synchronous => self.q_free_at,
                    Coupling::Asynchronous => self.r_free_at,
                };
                Some(server.max(ready_at) + eps)
            }
            _ => None,
        };
        [completion, ingest, matcher].into_iter().flatten().min()
    }

    fn next_service_legacy(&self, now: SimTime) -> Option<(SimTime, Action)> {
        let ingest = self.inbox.front().map(|&(sub_t, _)| {
            let server = self.q_free_at;
            (server.max(sub_t), Action::Ingest)
        });
        let matcher = match (self.ready.front(), self.head_blocked) {
            (Some(&(ready_at, _)), false) => {
                let server = match self.coupling {
                    Coupling::Synchronous => self.q_free_at,
                    Coupling::Asynchronous => self.r_free_at,
                };
                Some((server.max(ready_at), Action::Match(0)))
            }
            _ => None,
        };
        let candidate = match (ingest, matcher) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
        };
        candidate.filter(|&(t, _)| t < now)
    }

    fn run_service_legacy(&mut self, start: SimTime, action: Action, events: &mut Vec<JobEvent>) {
        match action {
            Action::Ingest => {
                let Some((_, id)) = self.inbox.pop_front() else {
                    return;
                };
                let end = start + self.costs.submit;
                self.q_free_at = end;
                if let Some(rec) = self.jobs.get_mut(&id) {
                    rec.state.advance_to(JobState::Queued);
                    self.ready.push_back((end, id));
                    self.tracer.span_at(
                        start,
                        self.costs.submit,
                        "sched",
                        "svc.ingest",
                        &[("job", id.0.into())],
                    );
                }
            }
            Action::Match(_) => {
                let Some(&(ready_at, id)) = self.ready.front() else {
                    return;
                };
                let Some(shape) = self.jobs.get(&id).map(|rec| rec.spec.shape) else {
                    return;
                };
                let placed = self.graph.try_alloc(&shape, self.policy);
                let visited = self.graph.visited_last();
                let cost = self.costs.per_node_visit * visited
                    + if placed.is_some() {
                        self.costs.dispatch
                    } else {
                        SimDuration::ZERO
                    };
                let end = start + cost;
                match self.coupling {
                    Coupling::Synchronous => self.q_free_at = end,
                    Coupling::Asynchronous => self.r_free_at = end,
                }
                self.tracer.span_at(
                    start,
                    cost,
                    "sched",
                    "svc.match",
                    &[("job", id.0.into()), ("visited", visited.into())],
                );
                self.tracer.observe("sched.visited_per_match", visited);
                match placed {
                    Some(alloc) => {
                        self.ready.pop_front();
                        let Some(rec) = self.jobs.get_mut(&id) else {
                            self.graph.release(&alloc);
                            return;
                        };
                        rec.alloc = Some(alloc);
                        rec.state.advance_to(JobState::Running);
                        rec.placed_at = Some(end);
                        let runtime = rec.spec.runtime;
                        let class = rec.spec.class;
                        let counts = self.counts_mut(class);
                        counts.0 += 1;
                        counts.1 -= 1;
                        self.stats.placed += 1;
                        self.running.insert((class, id));
                        if let Some(alloc) = self.jobs.get(&id).and_then(|r| r.alloc.as_ref()) {
                            for s in &alloc.slices {
                                self.residency.entry(s.node).or_default().insert(id);
                            }
                        }
                        self.completions.push(Reverse((end + runtime, id)));
                        self.tracer.instant_at(
                            end,
                            "sched",
                            "job.placed",
                            &[("job", id.0.into()), ("class", class.label().into())],
                        );
                        self.tracer.counter_add("sched.placed", 1);
                        self.tracer
                            .observe("sched.queue_wait_us", end.since(ready_at).as_micros());
                        events.push(JobEvent::Placed { id, at: end });
                    }
                    None => {
                        self.head_blocked = true;
                        self.stats.match_misses += 1;
                        self.tracer.counter_add("sched.match_misses", 1);
                    }
                }
            }
        }
    }

    fn counts_mut(&mut self, class: JobClass) -> &mut (u64, u64) {
        self.class_counts.entry(class).or_insert((0, 0))
    }

    /// Removes a job that just left [`JobState::Running`] from the running
    /// and residency indexes. `alloc` is the allocation it held (already
    /// released back to the graph by the caller).
    fn unindex_running(&mut self, id: JobId, class: JobClass, alloc: Option<&resources::Alloc>) {
        self.running.remove(&(class, id));
        if let Some(alloc) = alloc {
            for s in &alloc.slices {
                let emptied = self.residency.get_mut(&s.node).is_some_and(|set| {
                    set.remove(&id);
                    set.is_empty()
                });
                if emptied {
                    self.residency.remove(&s.node);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resources::{JobShape, MachineSpec, NodeSpec};

    fn engine(nodes: u32, policy: MatchPolicy, coupling: Coupling, costs: Costs) -> SchedEngine {
        let graph = ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit()));
        SchedEngine::new(graph, policy, coupling, costs)
    }

    fn sim_spec(runtime_s: u64) -> JobSpec {
        JobSpec::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_secs(runtime_s),
        )
    }

    #[test]
    fn submit_place_complete_lifecycle() {
        let mut e = engine(
            2,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let id = e.submit(sim_spec(100), SimTime::ZERO);
        assert_eq!(e.state(id), Some(JobState::Submitted));
        let ev = e.advance(SimTime::from_micros(1));
        assert!(matches!(ev[0], JobEvent::Placed { .. }));
        assert_eq!(e.state(id), Some(JobState::Running));
        assert_eq!(e.totals(), (1, 0));
        let ev = e.advance(SimTime::from_secs(101));
        assert!(matches!(ev[0], JobEvent::Finished { success: true, .. }));
        assert_eq!(e.state(id), Some(JobState::Completed));
        assert_eq!(e.totals(), (0, 0));
        assert_eq!(e.graph().gpu_usage().0, 0);
    }

    #[test]
    fn failed_jobs_report_failure() {
        let mut e = engine(
            1,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let id = e.submit(sim_spec(10).failing(), SimTime::ZERO);
        e.advance(SimTime::from_micros(1));
        let ev = e.advance(SimTime::from_secs(11));
        assert!(matches!(ev[0], JobEvent::Finished { success: false, .. }));
        assert_eq!(e.state(id), Some(JobState::Failed));
        assert_eq!(e.stats().failed, 1);
    }

    #[test]
    fn fcfs_head_blocks_queue_until_release() {
        // One node = 6 GPUs. Fill with 6 sims, then submit a 7th (blocks)
        // and an 8th behind it. No backfilling: neither runs until a
        // completion, then they run in order.
        let mut e = engine(
            1,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let mut first6 = Vec::new();
        for _ in 0..6 {
            first6.push(e.submit(sim_spec(1000), SimTime::ZERO));
        }
        let j7 = e.submit(sim_spec(10), SimTime::ZERO);
        let j8 = e.submit(sim_spec(10), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        assert_eq!(e.totals(), (6, 2));
        assert_eq!(e.state(j7), Some(JobState::Queued));
        // Cancel one running job -> releases a GPU -> j7 places, j8 waits.
        assert!(e.cancel(first6[0]));
        e.advance(SimTime::from_secs(2));
        assert_eq!(e.state(j7), Some(JobState::Running));
        assert_eq!(e.state(j8), Some(JobState::Queued));
        assert!(e.stats().match_misses >= 1);
    }

    #[test]
    fn cancel_in_each_state() {
        let mut e = engine(
            1,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let a = e.submit(sim_spec(100), SimTime::ZERO);
        assert!(e.cancel(a)); // canceled while Submitted
        assert_eq!(e.state(a), Some(JobState::Canceled));
        assert!(!e.cancel(a)); // idempotent

        let b = e.submit(sim_spec(100), SimTime::ZERO);
        e.advance(SimTime::from_micros(1));
        assert_eq!(e.state(b), Some(JobState::Running));
        assert!(e.cancel(b));
        assert_eq!(e.graph().gpu_usage().0, 0, "cancel releases resources");
        assert_eq!(e.totals(), (0, 0));
    }

    #[test]
    fn canceled_running_job_does_not_double_release() {
        let mut e = engine(
            1,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let id = e.submit(sim_spec(5), SimTime::ZERO);
        e.advance(SimTime::from_micros(1));
        e.cancel(id);
        // The stale completion event must be ignored.
        let ev = e.advance(SimTime::from_secs(10));
        assert!(ev.is_empty());
        assert_eq!(e.stats().canceled, 1);
        assert_eq!(e.stats().completed, 0);
    }

    #[test]
    fn service_costs_delay_placement() {
        let costs = Costs {
            submit: SimDuration::from_secs(1),
            per_node_visit: SimDuration::ZERO,
            dispatch: SimDuration::ZERO,
        };
        let mut e = engine(1, MatchPolicy::FirstMatch, Coupling::Synchronous, costs);
        for _ in 0..5 {
            e.submit(sim_spec(1000), SimTime::ZERO);
        }
        // After 3.5s of service, only 3 submissions are ingested; under
        // synchronous coupling matching waits behind the inbox.
        let ev = e.advance(SimTime::from_secs_f64(3.5));
        let placed = ev
            .iter()
            .filter(|e| matches!(e, JobEvent::Placed { .. }))
            .count();
        assert_eq!(placed, 0);
        let (running, pending) = e.totals();
        assert_eq!(running, 0);
        assert_eq!(pending, 5);
        // Once the inbox drains, matches proceed.
        let ev = e.advance(SimTime::from_secs(10));
        let placed = ev
            .iter()
            .filter(|e| matches!(e, JobEvent::Placed { .. }))
            .count();
        assert_eq!(placed, 5);
    }

    #[test]
    fn async_coupling_places_while_ingesting() {
        let costs = Costs {
            submit: SimDuration::from_secs(1),
            per_node_visit: SimDuration::ZERO,
            dispatch: SimDuration::from_millis(1),
        };
        let mut e = engine(2, MatchPolicy::FirstMatch, Coupling::Asynchronous, costs);
        for _ in 0..5 {
            e.submit(sim_spec(1000), SimTime::ZERO);
        }
        let ev = e.advance(SimTime::from_secs_f64(3.5));
        let placed = ev
            .iter()
            .filter(|e| matches!(e, JobEvent::Placed { .. }))
            .count();
        assert!(
            placed >= 2,
            "async R should place ingested jobs, got {placed}"
        );
    }

    #[test]
    fn exhaustive_policy_pays_full_graph_traversal() {
        let costs = Costs {
            submit: SimDuration::ZERO,
            per_node_visit: SimDuration::from_millis(1),
            dispatch: SimDuration::ZERO,
        };
        // 1000 nodes: each exhaustive match costs 1s.
        let mut ex = engine(
            1000,
            MatchPolicy::LowIdExhaustive,
            Coupling::Asynchronous,
            costs,
        );
        let mut fm = engine(1000, MatchPolicy::FirstMatch, Coupling::Asynchronous, costs);
        for e in [&mut ex, &mut fm] {
            for _ in 0..10 {
                e.submit(sim_spec(10_000), SimTime::ZERO);
            }
        }
        let horizon = SimTime::from_secs(5);
        let ex_placed = ex
            .advance(horizon)
            .iter()
            .filter(|e| matches!(e, JobEvent::Placed { .. }))
            .count();
        let fm_placed = fm
            .advance(horizon)
            .iter()
            .filter(|e| matches!(e, JobEvent::Placed { .. }))
            .count();
        assert!(ex_placed <= 5, "exhaustive is slow: {ex_placed}");
        assert_eq!(fm_placed, 10, "first-match is fast");
        assert!(fm.graph().visited_total() < ex.graph().visited_total() / 50);
    }

    #[test]
    fn class_counts_track_mixed_workload() {
        let mut e = engine(
            4,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        e.submit(sim_spec(100), SimTime::ZERO);
        e.submit(
            JobSpec::new(
                JobClass::CgSetup,
                JobShape::setup(),
                SimDuration::from_secs(50),
            ),
            SimTime::ZERO,
        );
        e.advance(SimTime::from_micros(1));
        assert_eq!(e.class_counts(JobClass::CgSim), (1, 0));
        assert_eq!(e.class_counts(JobClass::CgSetup), (1, 0));
        assert_eq!(e.class_counts(JobClass::AaSim), (0, 0));
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut e = engine(
            1,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        e.submit(sim_spec(100), SimTime::ZERO);
        let ev1 = e.advance(SimTime::from_secs(1));
        let ev2 = e.advance(SimTime::from_secs(1));
        assert_eq!(ev1.len(), 1);
        assert!(ev2.is_empty());
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use resources::{JobShape, MachineSpec, NodeSpec};

    fn engine(nodes: u32) -> SchedEngine {
        SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        )
    }

    fn sim() -> JobSpec {
        JobSpec::new(
            JobClass::CgSim,
            JobShape::sim_standard(),
            SimDuration::from_hours(1),
        )
    }

    #[test]
    fn node_failure_crashes_resident_jobs_only() {
        let mut e = engine(2);
        let mut ids = Vec::new();
        for _ in 0..12 {
            ids.push(e.submit(sim(), SimTime::ZERO));
        }
        e.advance(SimTime::from_secs(1));
        assert_eq!(e.graph().gpu_usage().0, 12);

        let victims = e.fail_node(0, SimTime::from_secs(2));
        assert_eq!(victims.len(), 6, "six sims lived on node 0");
        assert_eq!(e.graph().gpu_usage().0, 6, "their GPUs were released");
        // Failure events arrive on the next poll, exactly once.
        let events = e.advance(SimTime::from_secs(3));
        let failed = events
            .iter()
            .filter(|ev| matches!(ev, JobEvent::Finished { success: false, .. }))
            .count();
        assert_eq!(failed, 6);
        assert!(e.advance(SimTime::from_secs(4)).is_empty());
        // Survivors keep running.
        let running = ids
            .iter()
            .filter(|&&id| e.state(id) == Some(JobState::Running))
            .count();
        assert_eq!(running, 6);
        assert_eq!(e.stats().failed, 6);
    }

    #[test]
    fn failed_node_takes_no_new_work_until_undrained() {
        let mut e = engine(1);
        let a = e.submit(sim(), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        e.fail_node(0, SimTime::from_secs(2));
        assert_eq!(e.state(a), Some(JobState::Failed));
        let b = e.submit(sim(), SimTime::from_secs(3));
        e.advance(SimTime::from_secs(4));
        assert_eq!(
            e.state(b),
            Some(JobState::Queued),
            "drained node rejects work"
        );
        e.graph_mut().undrain(0);
        e.advance(SimTime::from_secs(5));
        assert_eq!(e.state(b), Some(JobState::Running));
    }

    /// Regression: calling `fail_node` twice on the same still-drained
    /// node used to re-emit the `node.failed` trace event and bump the
    /// `sched.node_failures` counter a second time, so chaos plans with
    /// repeated fail events over-reported failures. Minimal plan:
    /// `fail-node t0 0` + `fail-node t1 0` with no repair in between.
    #[test]
    fn double_fail_node_counts_once() {
        let mut e = engine(2);
        let tracer = trace::Tracer::enabled();
        e.set_tracer(tracer.clone());
        for _ in 0..12 {
            e.submit(sim(), SimTime::ZERO);
        }
        e.advance(SimTime::from_secs(1));

        let first = e.fail_node(0, SimTime::from_secs(2));
        assert_eq!(first.len(), 6);
        let second = e.fail_node(0, SimTime::from_secs(3));
        assert!(second.is_empty(), "second fail is a no-op");

        assert_eq!(e.stats().failed, 6, "no double-counted failures");
        let node_failed_events = tracer
            .events()
            .iter()
            .filter(|ev| ev.name == "node.failed")
            .count();
        assert_eq!(node_failed_events, 1, "node.failed traced exactly once");
        let counters = tracer.metrics_snapshot().counters;
        let node_failures = counters
            .iter()
            .find(|(k, _)| k == "sched.node_failures")
            .map(|&(_, v)| v);
        assert_eq!(node_failures, Some(1));
        // Crash notifications are delivered exactly once.
        let events = e.advance(SimTime::from_secs(4));
        assert_eq!(events.len(), 6);
        assert!(e.advance(SimTime::from_secs(5)).is_empty());
    }

    #[test]
    fn repaired_node_can_fail_again() {
        let mut e = engine(1);
        let a = e.submit(sim(), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        e.fail_node(0, SimTime::from_secs(2));
        assert_eq!(e.state(a), Some(JobState::Failed));
        e.graph_mut().undrain(0);
        let b = e.submit(sim(), SimTime::from_secs(3));
        e.advance(SimTime::from_secs(4));
        assert_eq!(e.state(b), Some(JobState::Running));
        // The repaired node fails anew: this is a fresh failure, counted.
        let victims = e.fail_node(0, SimTime::from_secs(5));
        assert_eq!(victims.len(), 1);
        assert_eq!(e.stats().failed, 2);
    }

    #[test]
    fn hung_job_never_completes_until_canceled() {
        let mut e = engine(1);
        let id = e.submit(sim(), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        assert_eq!(e.state(id), Some(JobState::Running));

        let hung = e.hang_running(JobClass::CgSim, SimTime::from_secs(2));
        assert_eq!(hung, Some(id));
        // No second job of the class is running, so a repeat finds nothing.
        assert_eq!(e.hang_running(JobClass::CgSim, SimTime::from_secs(2)), None);

        // Long past its runtime the job is still holding its GPUs.
        let ev = e.advance(SimTime::from_hours(3));
        assert!(ev.is_empty(), "hung job must not finish: {ev:?}");
        assert_eq!(e.state(id), Some(JobState::Running));
        assert!(e.graph().gpu_usage().0 > 0);
        assert_eq!(e.stats().completed, 0);

        // Cancel (the WM timeout path) reclaims the resources.
        assert!(e.cancel(id));
        assert_eq!(e.state(id), Some(JobState::Canceled));
        assert_eq!(e.graph().gpu_usage().0, 0);
        // The suppressed completion stays suppressed after cancel too.
        assert!(e.advance(SimTime::from_hours(4)).is_empty());
    }

    #[test]
    fn undelivered_events_reports_pending_crash_notices() {
        let mut e = engine(1);
        e.submit(sim(), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        assert_eq!(e.undelivered_events(), 0);
        e.fail_node(0, SimTime::from_secs(2));
        assert_eq!(e.undelivered_events(), 1);
        e.advance(SimTime::from_secs(3));
        assert_eq!(e.undelivered_events(), 0);
    }

    #[test]
    fn stale_completion_of_crashed_job_is_ignored() {
        let mut e = engine(1);
        e.submit(sim(), SimTime::ZERO);
        e.advance(SimTime::from_secs(1));
        e.fail_node(0, SimTime::from_secs(2));
        e.advance(SimTime::from_secs(3));
        // The original completion (at t=1h+) must not fire again.
        let late = e.advance(SimTime::from_hours(2));
        assert!(late.is_empty(), "unexpected events: {late:?}");
        assert_eq!(e.stats().completed, 0);
        assert_eq!(e.stats().failed, 1);
    }
}
