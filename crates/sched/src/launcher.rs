//! The Maestro-like launcher facade.
//!
//! "To achieve portability in job scheduling, the MuMMI workflow interfaces
//! with Maestro, which provides a consistent API to schedule and monitor
//! jobs. At the back-end, Maestro can interface with different job
//! schedulers" (§4.3). The workflow manager programs against [`Launcher`];
//! [`crate::SchedEngine`] implements it, and tests may substitute stubs.

use simcore::SimTime;

use crate::engine::SchedEngine;
use crate::job::{JobClass, JobEvent, JobId, JobSpec, JobState};

/// Scheduler-agnostic job submission and monitoring.
pub trait Launcher {
    /// Submits a job at time `at`; returns its id.
    fn submit(&mut self, spec: JobSpec, at: SimTime) -> JobId;

    /// Cancels a job; returns false for unknown/terminal jobs.
    fn cancel(&mut self, id: JobId) -> bool;

    /// Drives the backend to `now`, returning lifecycle events since the
    /// previous poll.
    fn poll(&mut self, now: SimTime) -> Vec<JobEvent>;

    /// Current state of a job, if known.
    fn state(&self, id: JobId) -> Option<JobState>;

    /// (running, pending) counts for one job class.
    fn class_counts(&self, class: JobClass) -> (u64, u64);

    /// (used, total) GPUs of the resource set.
    fn gpu_usage(&self) -> (u64, u64);

    /// (used, total) CPU cores of the resource set.
    fn cpu_usage(&self) -> (u64, u64);

    /// The earliest future instant at which [`Launcher::poll`] could
    /// return new events or place queued work, or `None` when the backend
    /// is idle (or cannot say — the default). Event-driven drivers use
    /// this to jump the clock; backends that return `None` are simply
    /// polled on the driver's fallback cadence instead.
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }
}

impl Launcher for SchedEngine {
    fn submit(&mut self, spec: JobSpec, at: SimTime) -> JobId {
        SchedEngine::submit(self, spec, at)
    }

    fn cancel(&mut self, id: JobId) -> bool {
        SchedEngine::cancel(self, id)
    }

    fn poll(&mut self, now: SimTime) -> Vec<JobEvent> {
        self.advance(now)
    }

    fn state(&self, id: JobId) -> Option<JobState> {
        SchedEngine::state(self, id)
    }

    fn class_counts(&self, class: JobClass) -> (u64, u64) {
        SchedEngine::class_counts(self, class)
    }

    fn gpu_usage(&self) -> (u64, u64) {
        self.graph().gpu_usage()
    }

    fn cpu_usage(&self) -> (u64, u64) {
        self.graph().cpu_usage()
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        SchedEngine::next_wakeup(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Costs, Coupling};
    use resources::{JobShape, MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
    use simcore::SimDuration;

    #[test]
    fn engine_implements_launcher() {
        let graph = ResourceGraph::new(MachineSpec::custom("t", 1, NodeSpec::summit()));
        let mut launcher: Box<dyn Launcher> = Box::new(SchedEngine::new(
            graph,
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        ));
        let id = launcher.submit(
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_secs(10),
            ),
            SimTime::ZERO,
        );
        let ev = launcher.poll(SimTime::from_secs(1));
        assert!(matches!(ev[0], JobEvent::Placed { .. }));
        assert_eq!(launcher.state(id), Some(JobState::Running));
        assert_eq!(launcher.gpu_usage().0, 1);
        assert_eq!(launcher.class_counts(JobClass::CgSim), (1, 0));
        launcher.poll(SimTime::from_secs(20));
        assert_eq!(launcher.state(id), Some(JobState::Completed));
        assert_eq!(launcher.cpu_usage().0, 0);
    }
}
