//! A Flux-like single-user workload manager in virtual time.
//!
//! MuMMI runs Flux inside a batch allocation as an "isolated HPC system"
//! with throughput-oriented policies: "first come, first served with no
//! backfilling" queuing and "low resource ID first" matching (§4.3). The
//! 4000-node run exposed that the queue manager (Q) and resource matcher
//! (R) "communicate synchronously": Q spends its time ingesting submissions
//! instead of forwarding work, so placement happens "in large chunks
//! followed by large periods of inactivity" (Figure 6). The fixes — an
//! asynchronous Q↔R path and a greedy first-match policy — produced a 670×
//! matcher improvement in Flux's emulator (§5.2).
//!
//! [`SchedEngine`] models exactly that pipeline in virtual time:
//!
//! - submissions land in Q's **inbox**, each costing [`Costs::submit`] of
//!   service time (script write, RPC, validation);
//! - ingested jobs wait in a strict **FCFS queue** — if the head does not
//!   fit, nothing behind it is tried (no backfilling);
//! - R matches the head against the [`resources::ResourceGraph`], paying
//!   [`Costs::per_node_visit`] for every node the policy inspects;
//! - under [`Coupling::Synchronous`], Q and R share one service timeline
//!   and Q's inbox preempts R; under [`Coupling::Asynchronous`] they run
//!   concurrently.
//!
//! [`Throttle`] reproduces MuMMI's deliberate submission throttling
//! (~100 jobs/min) and [`Launcher`] is the Maestro-like facade the
//! workflow manager talks to, keeping it agnostic to the backend.

//! ```
//! use resources::{JobShape, MachineSpec, MatchPolicy, ResourceGraph};
//! use sched::{Costs, Coupling, JobClass, JobSpec, Launcher, SchedEngine};
//! use simcore::{SimDuration, SimTime};
//!
//! let graph = ResourceGraph::new(MachineSpec::summit_allocation(2));
//! let mut flux = SchedEngine::new(
//!     graph, MatchPolicy::FirstMatch, Coupling::Asynchronous, Costs::free());
//! flux.submit(
//!     JobSpec::new(JobClass::CgSim, JobShape::sim_standard(), SimDuration::from_hours(1)),
//!     SimTime::ZERO,
//! );
//! let events = flux.poll(SimTime::from_secs(1));
//! assert!(matches!(events[0], sched::JobEvent::Placed { .. }));
//! assert_eq!(flux.gpu_usage().0, 1); // one GPU, not a whole node
//! ```

mod engine;
mod job;
mod launcher;
mod policy;
mod replay;
mod throttle;

pub use engine::{ClassWait, Costs, Coupling, SchedEngine, SchedStats};
pub use job::{
    JobClass, JobEvent, JobId, JobOutcome, JobSpec, JobState, TrackedState, ALLOWED_TRANSITIONS,
};
pub use launcher::Launcher;
pub use policy::SchedPolicy;
pub use replay::{SchedEvent, SchedLog};
pub use throttle::Throttle;
