//! Submission throttling.
//!
//! "For most parts of this campaign, we specifically throttled the rate of
//! submission to prevent overloading the job scheduler" (§5.2) — MuMMI
//! configured ~100 jobs/min. [`Throttle`] hands out the earliest allowed
//! submission times at a fixed rate.

use simcore::{SimDuration, SimTime};

/// A fixed-rate submission throttle.
#[derive(Debug, Clone)]
pub struct Throttle {
    interval: SimDuration,
    next_at: SimTime,
}

impl Throttle {
    /// A throttle allowing `per_min` submissions per minute.
    ///
    /// # Panics
    /// Panics when `per_min` is zero.
    pub fn per_minute(per_min: u64) -> Throttle {
        assert!(per_min > 0, "throttle rate must be positive");
        Throttle {
            interval: SimDuration::from_secs(60) / per_min,
            next_at: SimTime::ZERO,
        }
    }

    /// The configured inter-submission interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Reserves the next submission slot at or after `now`, returning the
    /// time at which the submission may happen.
    pub fn reserve(&mut self, now: SimTime) -> SimTime {
        let at = self.next_at.max(now);
        self.next_at = at + self.interval;
        at
    }

    /// How many slots are available in `[now, now + window)` without
    /// consuming them.
    pub fn slots_within(&self, now: SimTime, window: SimDuration) -> u64 {
        let start = self.next_at.max(now);
        let end = now + window;
        if start >= end {
            return 0;
        }
        let span = end.since(start).as_micros();
        span.div_ceil(self.interval.as_micros().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_enforced() {
        let mut t = Throttle::per_minute(100);
        let mut at = SimTime::ZERO;
        let mut times = Vec::new();
        for _ in 0..200 {
            at = t.reserve(at);
            times.push(at);
        }
        // 200 submissions at 100/min must span at least ~1.99 minutes.
        let span = times.last().unwrap().since(times[0]);
        assert!(span >= SimDuration::from_millis(119_400), "span {span}");
        // Consecutive slots are exactly 600 ms apart when saturated.
        assert_eq!(times[1].since(times[0]), SimDuration::from_millis(600));
    }

    #[test]
    fn idle_throttle_does_not_accumulate_burst() {
        let mut t = Throttle::per_minute(60);
        // First reservation long after start: no banked credit.
        let a = t.reserve(SimTime::from_micros(120_000_000));
        let b = t.reserve(SimTime::from_micros(120_000_000));
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn slots_within_counts_capacity() {
        let t = Throttle::per_minute(60); // one per second
        assert_eq!(
            t.slots_within(SimTime::ZERO, SimDuration::from_secs(10)),
            10
        );
        assert_eq!(t.slots_within(SimTime::ZERO, SimDuration::ZERO), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Throttle::per_minute(0);
    }
}
