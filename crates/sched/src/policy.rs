//! The scheduler policy zoo: queue-ordering and backfill decisions.
//!
//! [`SchedPolicy`] is the *queue* policy — which queued job the matcher
//! tries next and what happens when it does not fit. It composes with
//! [`resources::MatchPolicy`], which stays the *placement* sub-policy
//! (how the matcher walks the resource graph once a job is chosen). The
//! paper's campaign ran exactly one point of this space — strict FCFS
//! with no backfilling (§4.3) — and that remains the byte-identical
//! default; the other members exist to show the 670× async/first-match
//! coordination win is a property of the design, not of one policy.
//!
//! | policy         | candidate when head fits | on head miss                        |
//! |----------------|--------------------------|-------------------------------------|
//! | `Fcfs`         | queue head               | queue blocks until a release        |
//! | `BackfillEasy` | queue head               | backfill jobs that cannot delay the |
//! |                |                          | head's earliest-start reservation   |
//! | `BackfillConservative` | queue head       | backfill jobs that cannot delay     |
//! |                |                          | *any* job ahead of them             |
//! | `FairShare`    | head of least-consumed class (node-seconds accrued at |
//! |                | release; ties break by submission seq)                |
//! | `Hierarchical` | two child instances partition the node range by job   |
//! |                | class (GPU vs CPU); a blocked child never stalls the  |
//! |                | other                                                 |
//!
//! Backfill reservations are estimated from an *aggregate* free-resource
//! profile (current free totals plus scheduled releases), which is
//! optimistic: the estimate is a lower bound on any real fit time, so a
//! backfilled job whose end lands at or before the estimate can never
//! delay the job holding the reservation (see `policy_props.rs`).

/// Queue-ordering + backfill policy of a [`crate::SchedEngine`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedPolicy {
    /// Strict first-come-first-served, no backfilling — the campaign's
    /// configuration and the byte-identical default.
    #[default]
    Fcfs,
    /// EASY backfill: the head of the queue holds a reservation; jobs
    /// behind it may run out of order only if they finish by the head's
    /// estimated start.
    BackfillEasy,
    /// Conservative backfill: a job may run out of order only if it
    /// finishes by the estimated start of *every* job ahead of it.
    BackfillConservative,
    /// Fair-share across job classes: the matcher tries the oldest queued
    /// job of the class with the least consumed node-seconds, the same
    /// min-by-consumed comparator shape the farm uses for tenant
    /// admission. Ties break by submission sequence.
    FairShare,
    /// Hierarchical two-level scheduling (Flux-style): a parent instance
    /// partitions the node range across two child schedulers — GPU
    /// classes on the low range, CPU classes on the high range — so a
    /// blocked wide CPU job cannot stall GPU throughput.
    Hierarchical,
}

impl SchedPolicy {
    /// Every member of the zoo, in a fixed order (benchmark matrices and
    /// proptest suites iterate this).
    pub const ALL: [SchedPolicy; 5] = [
        SchedPolicy::Fcfs,
        SchedPolicy::BackfillEasy,
        SchedPolicy::BackfillConservative,
        SchedPolicy::FairShare,
        SchedPolicy::Hierarchical,
    ];

    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::BackfillEasy => "backfill-easy",
            SchedPolicy::BackfillConservative => "backfill-conservative",
            SchedPolicy::FairShare => "fair-share",
            SchedPolicy::Hierarchical => "hierarchical",
        }
    }

    /// Parses a wire/CLI name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        SchedPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether this policy backfills (has reservation state).
    pub fn is_backfill(self) -> bool {
        matches!(
            self,
            SchedPolicy::BackfillEasy | SchedPolicy::BackfillConservative
        )
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SchedPolicy::parse("lottery"), None);
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fcfs);
    }
}
