//! Property-based agreement between `Throttle::reserve` and
//! `Throttle::slots_within`.
//!
//! `slots_within(now, window)` is the planning view ("how many submissions
//! could I schedule in this window?") and `reserve(now)` is the consuming
//! view. They must agree exactly: the number of `reserve` calls whose
//! granted times land in `[now, now + window)` equals `slots_within(now,
//! window)` — pinning the `div_ceil` boundary arithmetic on both the
//! window edge and a mid-interval `next_at`.

use proptest::prelude::*;
use sched::Throttle;
use simcore::{SimDuration, SimTime};

/// Counts how many consecutive reservations land strictly before `end`.
fn reservations_in(mut t: Throttle, now: SimTime, end: SimTime) -> u64 {
    let mut n = 0;
    loop {
        let at = t.reserve(now);
        if at >= end {
            return n;
        }
        n += 1;
        assert!(n <= 1_000_000, "runaway reservation loop");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For arbitrary rates, windows, prior consumption, and query times,
    /// the planning count equals the consuming count.
    #[test]
    fn slots_within_agrees_with_reserve(
        per_min in 1u64..6000,
        prior in 0u64..50,
        prior_at_secs in 0u64..600,
        now_secs in 0u64..1200,
        window_micros in 0u64..120_000_000,
    ) {
        let mut t = Throttle::per_minute(per_min);
        // Consume some slots first so `next_at` sits at an arbitrary
        // (often mid-interval, unaligned) point relative to `now`.
        let prior_at = SimTime::from_secs(prior_at_secs);
        for _ in 0..prior {
            t.reserve(prior_at);
        }
        let now = SimTime::from_secs(now_secs);
        let window = SimDuration::from_micros(window_micros);
        let planned = t.slots_within(now, window);
        let consumed = reservations_in(t.clone(), now, now + window);
        prop_assert_eq!(
            planned,
            consumed,
            "rate {}/min, next_at after {} reserves at {}, now {}, window {}",
            per_min,
            prior,
            prior_at,
            now,
            window
        );
    }

    /// An empty window never has slots, and a window of exactly one
    /// interval has exactly one (the slot at its left edge) when the
    /// throttle is idle.
    #[test]
    fn interval_edge_cases(per_min in 1u64..6000, now_secs in 0u64..600) {
        let t = Throttle::per_minute(per_min);
        let now = SimTime::from_secs(now_secs);
        prop_assert_eq!(t.slots_within(now, SimDuration::ZERO), 0);
        prop_assert_eq!(t.slots_within(now, t.interval()), 1);
        // One microsecond past a whole interval admits the next slot.
        let just_over = t.interval() + SimDuration::from_micros(1);
        prop_assert_eq!(t.slots_within(now, just_over), 2);
    }
}

/// Deterministic pin of the `div_ceil` boundary: a window that is an exact
/// multiple of the interval yields exactly that multiple, never one more.
#[test]
fn exact_multiple_windows_are_not_over_counted() {
    let t = Throttle::per_minute(60); // 1-second interval
    for k in 0..20u64 {
        assert_eq!(
            t.slots_within(SimTime::ZERO, SimDuration::from_secs(k)),
            k,
            "window of exactly {k} intervals"
        );
        assert_eq!(
            reservations_in(t.clone(), SimTime::ZERO, SimTime::from_secs(k)),
            k
        );
    }
}

/// When `next_at` is already beyond the whole window, both views agree on
/// zero.
#[test]
fn fully_consumed_window_has_zero_slots() {
    let mut t = Throttle::per_minute(60);
    for _ in 0..100 {
        t.reserve(SimTime::ZERO);
    }
    // next_at is now at t=100s; a 10-second window at t=0 is exhausted.
    assert_eq!(t.slots_within(SimTime::ZERO, SimDuration::from_secs(10)), 0);
    assert_eq!(
        reservations_in(t.clone(), SimTime::ZERO, SimTime::from_secs(10)),
        0
    );
}
