//! Shared invariants of the scheduler policy zoo.
//!
//! Every queue-ordering policy — FCFS, both backfill flavors, fair
//! share, hierarchical — must uphold the same safety contract the
//! monolithic FCFS engine always had; the policies may only differ in
//! *which* job the matcher sees next. These properties pin that
//! contract over arbitrary job streams:
//!
//! - no job is placed or finished more than once, and resource usage
//!   returns to zero once the stream drains (no double-booking);
//! - the stats ledger conserves jobs (completed + failed + canceled =
//!   submitted) and every feasible job eventually reaches a terminal
//!   state (no starvation, including under backfill);
//! - EASY backfill never delays the blocked head: a backfilled job
//!   returns its resources no later than the head's actual start;
//! - FCFS through the split policy layer is event-identical to the
//!   retained pre-refactor monolith (`set_legacy_fcfs`), the
//!   differential oracle for the whole refactor.

use proptest::prelude::*;
use resources::{JobShape, MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, SchedEngine, SchedPolicy};
use simcore::{SimDuration, SimTime};

/// An 8-node Summit-like machine: big enough that the hierarchical
/// split (child 1 owns the top quarter — 2 nodes) can host every CPU
/// shape the generators below produce.
fn machine() -> MachineSpec {
    MachineSpec::custom("p", 8, NodeSpec::summit())
}

fn engine(policy: SchedPolicy) -> SchedEngine {
    let mut e = SchedEngine::new(
        ResourceGraph::new(machine()),
        MatchPolicy::FirstMatch,
        Coupling::Asynchronous,
        Costs::free(),
    );
    e.set_sched_policy(policy);
    e
}

/// Job shapes that all fit the empty machine — and, for CPU shapes,
/// the hierarchical CPU partition — so "eventually places" is a
/// capacity fact, not an accident of ordering.
fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (0usize..4, 1u64..90).prop_map(|(kind, mins)| {
        let (class, shape) = match kind {
            0 => (JobClass::CgSim, JobShape::sim_standard()),
            1 => (JobClass::AaSim, JobShape::sim(5)),
            2 => (JobClass::CgSetup, JobShape::setup()),
            _ => (JobClass::Continuum, JobShape::continuum(2)),
        };
        JobSpec::new(class, shape, SimDuration::from_mins(mins))
    })
}

#[derive(Debug, Clone)]
enum Op {
    Submit(JobSpec),
    Cancel { idx: usize },
    Advance { mins: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_spec().prop_map(Op::Submit),
        arb_spec().prop_map(Op::Submit),
        (0usize..64).prop_map(|idx| Op::Cancel { idx }),
        (1u64..180).prop_map(|mins| Op::Advance { mins }),
        (1u64..180).prop_map(|mins| Op::Advance { mins }),
    ]
}

/// Drives one engine through the op stream, then drains it to
/// quiescence. Non-FCFS policies only retry a blocked head when a
/// completion (or cancel/failure) lands, so the drain advances in
/// waves — each wave's completions unblock the next — rather than one
/// long jump.
fn drive(policy: SchedPolicy, ops: &[Op]) -> (SchedEngine, Vec<JobEvent>, Vec<sched::JobId>) {
    let mut e = engine(policy);
    let mut now = SimTime::ZERO;
    let mut jobs = Vec::new();
    let mut events = Vec::new();
    for op in ops {
        match op {
            Op::Submit(spec) => jobs.push(e.submit(spec.clone(), now)),
            Op::Cancel { idx } => {
                if !jobs.is_empty() {
                    e.cancel(jobs[idx % jobs.len()]);
                }
            }
            Op::Advance { mins } => {
                now += SimDuration::from_mins(*mins);
                events.extend(e.advance(now));
            }
        }
    }
    for _ in 0..64 {
        now += SimDuration::from_hours(10);
        events.extend(e.advance(now));
        if e.totals() == (0, 0) {
            break;
        }
    }
    (e, events, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No double-booking, job conservation, and no starvation — under
    /// every policy in the zoo, over one shared op stream.
    #[test]
    fn every_policy_conserves_jobs_and_resources(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        for policy in SchedPolicy::ALL {
            let (e, events, jobs) = drive(policy, &ops);
            let mut placed = std::collections::HashMap::new();
            let mut finished = std::collections::HashMap::new();
            for ev in &events {
                match ev {
                    JobEvent::Placed { id, .. } => *placed.entry(*id).or_insert(0u32) += 1,
                    JobEvent::Finished { id, .. } => *finished.entry(*id).or_insert(0u32) += 1,
                }
            }
            for (&id, &n) in &placed {
                prop_assert!(n <= 1, "[{}] {id} placed {n} times", policy.name());
            }
            for (&id, &n) in &finished {
                prop_assert!(n <= 1, "[{}] {id} finished {n} times", policy.name());
            }
            // No starvation: every feasible job reached a terminal state.
            for &id in &jobs {
                let st = e.state(id).expect("job known");
                prop_assert!(st.is_terminal(), "[{}] {id} starved in {st:?}", policy.name());
            }
            // Double-booking would strand usage; a drained queue must
            // return the machine to empty.
            prop_assert_eq!(e.graph().gpu_usage().0, 0, "[{}] gpus leak", policy.name());
            prop_assert_eq!(e.graph().cpu_usage().0, 0, "[{}] cores leak", policy.name());
            prop_assert_eq!(e.totals(), (0, 0), "[{}] queue not drained", policy.name());
            let stats = e.stats();
            prop_assert_eq!(stats.submitted as usize, jobs.len());
            prop_assert_eq!(
                stats.completed + stats.failed + stats.canceled,
                jobs.len() as u64,
                "[{}] ledger does not balance", policy.name()
            );
        }
    }

    /// EASY backfill never delays the blocked head: every job that
    /// jumped the queue returned its resources by the time the head it
    /// jumped actually started. Under `Costs::free` the engine's
    /// reservation arithmetic is exact, so the comparison holds with
    /// equality allowed (a release and a start may share a timestamp).
    #[test]
    fn easy_backfill_never_delays_the_head(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let mut e = engine(SchedPolicy::BackfillEasy);
        e.collect_backfill_pairs(true);
        let mut now = SimTime::ZERO;
        let mut jobs = Vec::new();
        let mut placed_at = std::collections::HashMap::new();
        let mut finished_at = std::collections::HashMap::new();
        let mut note = |events: Vec<JobEvent>| {
            for ev in events {
                match ev {
                    JobEvent::Placed { id, at } => {
                        placed_at.insert(id, at);
                    }
                    JobEvent::Finished { id, at, .. } => {
                        finished_at.insert(id, at);
                    }
                }
            }
        };
        for op in &ops {
            match op {
                Op::Submit(spec) => jobs.push(e.submit(spec.clone(), now)),
                Op::Cancel { idx } => {
                    if !jobs.is_empty() {
                        e.cancel(jobs[idx % jobs.len()]);
                    }
                }
                Op::Advance { mins } => {
                    now += SimDuration::from_mins(*mins);
                    note(e.advance(now));
                }
            }
        }
        for _ in 0..64 {
            now += SimDuration::from_hours(10);
            note(e.advance(now));
            if e.totals() == (0, 0) {
                break;
            }
        }
        for &(bf, head) in e.backfill_pairs() {
            // A canceled head never starts; the pair carries no bound.
            let Some(&head_start) = placed_at.get(&head) else {
                continue;
            };
            // A canceled or failing backfilled job released early —
            // earlier than its runtime promised — which only widens
            // the margin, so missing finish times are fine to skip.
            let Some(&bf_end) = finished_at.get(&bf) else {
                continue;
            };
            prop_assert!(
                bf_end <= head_start,
                "backfilled {bf} held resources until {bf_end}, past head {head} start {head_start}"
            );
        }
    }

    /// The split FCFS policy is event-identical to the retained
    /// pre-refactor monolith on the same stream — placements, finishes,
    /// timestamps, and final stats all match.
    #[test]
    fn fcfs_matches_the_legacy_monolith(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let run = |legacy: bool| {
            let mut e = engine(SchedPolicy::Fcfs);
            e.set_legacy_fcfs(legacy);
            let mut now = SimTime::ZERO;
            let mut jobs = Vec::new();
            let mut events = Vec::new();
            for op in &ops {
                match op {
                    Op::Submit(spec) => jobs.push(e.submit(spec.clone(), now)),
                    Op::Cancel { idx } => {
                        if !jobs.is_empty() {
                            e.cancel(jobs[idx % jobs.len()]);
                        }
                    }
                    Op::Advance { mins } => {
                        now += SimDuration::from_mins(*mins);
                        events.extend(e.advance(now));
                    }
                }
            }
            now += SimDuration::from_hours(1000);
            events.extend(e.advance(now));
            (events, e.stats())
        };
        let (split_events, split_stats) = run(false);
        let (legacy_events, legacy_stats) = run(true);
        prop_assert_eq!(split_events, legacy_events);
        prop_assert_eq!(split_stats, legacy_stats);
    }
}

/// Regression for the fragmentation wedge: a wide CPU head that fits
/// the *aggregate* free pool but no actual node must still open a
/// backfill window. Four running continuum slices leave 20 free cores
/// on every node; the queued `continuum(2)` head needs 24 per node, so
/// it is topology-blocked while the aggregate says "fits now". Before
/// the head estimate was clamped to the first scheduled release, the
/// reservation window collapsed to zero width and EASY degraded to
/// FCFS — zero backfills, starved narrows.
#[test]
fn aggregate_feasible_but_fragmented_head_still_backfills() {
    for policy in [SchedPolicy::BackfillEasy, SchedPolicy::BackfillConservative] {
        let mut e = SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("p", 4, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        e.set_sched_policy(policy);
        // Blanket every node with a 24-core slice (one 4-node wide job).
        let wide = e.submit(
            JobSpec::new(
                JobClass::Continuum,
                JobShape::continuum(4),
                SimDuration::from_mins(100),
            ),
            SimTime::ZERO,
        );
        let mut t = SimTime::from_mins(1);
        assert!(e
            .advance(t)
            .iter()
            .any(|ev| matches!(ev, JobEvent::Placed { id, .. } if *id == wide)));
        // The fragmented head: aggregate-feasible (80 free cores >= 48),
        // per-node infeasible (20 < 24 everywhere).
        e.submit(
            JobSpec::new(
                JobClass::Continuum,
                JobShape::continuum(2),
                SimDuration::from_mins(100),
            ),
            t,
        );
        // Narrow GPU sims behind it: they finish well inside the wide
        // job's remaining 99 minutes, so both backfill flavors must
        // start them instead of idling 24 GPUs.
        for _ in 0..6 {
            e.submit(
                JobSpec::new(
                    JobClass::CgSim,
                    JobShape::sim_standard(),
                    SimDuration::from_mins(10),
                ),
                t,
            );
        }
        t += SimDuration::from_mins(5);
        e.advance(t);
        let stats = e.stats();
        assert!(
            stats.backfills >= 6,
            "[{}] expected the narrow sims backfilled, got {stats:?}",
            policy.name()
        );
    }
}

/// Queue ties break by submission sequence: a burst of identical jobs
/// submitted at the same instant places in submission order under
/// every policy. Duplicate priorities (same class, same shape, same
/// ready time) must never reorder on an internal detail like hash
/// order or heap tie-breaking.
#[test]
fn duplicate_priority_burst_places_in_submission_order() {
    for policy in SchedPolicy::ALL {
        let mut e = engine(policy);
        let ids: Vec<_> = (0..16)
            .map(|_| {
                e.submit(
                    JobSpec::new(
                        JobClass::CgSim,
                        JobShape::sim_standard(),
                        SimDuration::from_mins(30),
                    ),
                    SimTime::ZERO,
                )
            })
            .collect();
        let events = e.advance(SimTime::from_hours(2));
        let placed: Vec<_> = events
            .iter()
            .filter_map(|ev| match ev {
                JobEvent::Placed { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(
            placed,
            ids,
            "[{}] burst placed out of submission order",
            policy.name()
        );
    }
}
