//! Property-based invariants of the scheduling engine.

use proptest::prelude::*;
use resources::{JobShape, MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
use sched::{Costs, Coupling, JobClass, JobEvent, JobSpec, JobState, SchedEngine};
use simcore::{SimDuration, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Submit { runtime_mins: u64, failing: bool },
    Cancel { idx: usize },
    Advance { mins: u64 },
    FailNode { node: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..120, any::<bool>()).prop_map(|(runtime_mins, failing)| Op::Submit {
            runtime_mins,
            failing
        }),
        (0usize..64).prop_map(|idx| Op::Cancel { idx }),
        (1u64..240).prop_map(|mins| Op::Advance { mins }),
        (0u32..3).prop_map(|node| Op::FailNode { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Under any interleaving of submissions, cancels, advances, and node
    /// failures:
    /// - every job is Placed at most once and Finished at most once;
    /// - terminal states are consistent with the events;
    /// - resource usage returns to zero once everything is terminal;
    /// - the stats counters balance.
    #[test]
    fn engine_is_consistent_under_chaos(
        ops in prop::collection::vec(arb_op(), 1..80),
        coupling in prop_oneof![Just(Coupling::Synchronous), Just(Coupling::Asynchronous)],
    ) {
        let mut engine = SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("p", 3, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            coupling,
            Costs::free(),
        );
        let mut now = SimTime::ZERO;
        let mut jobs = Vec::new();
        let mut placed_count = std::collections::HashMap::new();
        let mut finished_count = std::collections::HashMap::new();

        for op in &ops {
            match op {
                Op::Submit { runtime_mins, failing } => {
                    let mut spec = JobSpec::new(
                        JobClass::CgSim,
                        JobShape::sim_standard(),
                        SimDuration::from_mins(*runtime_mins),
                    );
                    if *failing {
                        spec = spec.failing();
                    }
                    jobs.push(engine.submit(spec, now));
                }
                Op::Cancel { idx } => {
                    if !jobs.is_empty() {
                        engine.cancel(jobs[idx % jobs.len()]);
                    }
                }
                Op::Advance { mins } => {
                    now += SimDuration::from_mins(*mins);
                    for ev in engine.advance(now) {
                        match ev {
                            JobEvent::Placed { id, .. } => {
                                *placed_count.entry(id).or_insert(0u32) += 1;
                            }
                            JobEvent::Finished { id, .. } => {
                                *finished_count.entry(id).or_insert(0u32) += 1;
                            }
                        }
                    }
                }
                Op::FailNode { node } => {
                    engine.fail_node(*node, now);
                    engine.graph_mut().undrain(*node);
                }
            }
        }

        // Drain everything to terminality.
        now += SimDuration::from_hours(100);
        for ev in engine.advance(now) {
            match ev {
                JobEvent::Placed { id, .. } => {
                    *placed_count.entry(id).or_insert(0) += 1;
                }
                JobEvent::Finished { id, .. } => {
                    *finished_count.entry(id).or_insert(0) += 1;
                }
            }
        }

        for (&id, &n) in &placed_count {
            prop_assert!(n <= 1, "{id} placed {n} times");
        }
        for (&id, &n) in &finished_count {
            prop_assert!(n <= 1, "{id} finished {n} times");
        }
        // Every submitted job reached a terminal state (nothing queued can
        // remain: the machine is empty and the head retries each poll).
        for &id in &jobs {
            let st = engine.state(id).expect("job known");
            prop_assert!(st.is_terminal(), "{id} stuck in {st:?}");
        }
        prop_assert_eq!(engine.graph().gpu_usage().0, 0);
        prop_assert_eq!(engine.graph().cpu_usage().0, 0);
        prop_assert_eq!(engine.totals(), (0, 0));

        let stats = engine.stats();
        prop_assert_eq!(stats.submitted as usize, jobs.len());
        prop_assert_eq!(
            stats.completed + stats.failed + stats.canceled,
            jobs.len() as u64
        );
        // Finished events match non-canceled terminal jobs that ran.
        let terminal_by_event: u64 = finished_count.values().map(|&v| v as u64).sum();
        prop_assert!(terminal_by_event <= stats.completed + stats.failed);
    }

    /// Jobs complete no earlier than submission + runtime.
    #[test]
    fn completion_respects_runtime(
        runtimes in prop::collection::vec(1u64..200, 1..12),
    ) {
        let mut engine = SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("p", 2, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        let mut expect = std::collections::HashMap::new();
        for (i, &mins) in runtimes.iter().enumerate() {
            let at = SimTime::from_mins(i as u64);
            let id = engine.submit(
                JobSpec::new(
                    JobClass::CgSim,
                    JobShape::sim_standard(),
                    SimDuration::from_mins(mins),
                ),
                at,
            );
            expect.insert(id, at + SimDuration::from_mins(mins));
        }
        let events = engine.advance(SimTime::from_hours(1000));
        for ev in events {
            if let JobEvent::Finished { id, at, .. } = ev {
                prop_assert!(
                    at >= expect[&id],
                    "{id} finished at {at} before earliest {}",
                    expect[&id]
                );
                prop_assert_eq!(engine.state(id), Some(JobState::Completed));
            }
        }
    }
}
