//! Property tests for the resource matcher's allocation invariants.
//!
//! Three families of properties over arbitrary seeded op sequences
//! (allocations of all four MuMMI job shapes, releases, drains,
//! undrains) on a Summit-shaped machine:
//!
//! 1. **No double-booking** — every core/GPU bit is held by at most one
//!    outstanding allocation, and the graph's free masks equal the full
//!    machine minus the union of outstanding grants.
//! 2. **Claim+release round-trips** — releasing an allocation restores
//!    the *exact* prior free set, bit for bit.
//! 3. **Indexed ≡ linear (differential oracle)** — the segment-tree
//!    matcher picks the same node set, reports the same visit counts,
//!    and leaves the same state as the retained O(n) linear matcher,
//!    for both match policies.
//!
//! The free-count index (`validate_index`) is additionally checked
//! against the node table after every operation.

use proptest::prelude::*;
use resources::{Alloc, JobShape, MachineSpec, MatchPolicy, ResourceGraph};

const NODES: u32 = 12;

/// Which resource request an `Op::Alloc` issues. Mirrors the four MuMMI
/// job types (continuum scaled down to the toy machine).
#[derive(Debug, Clone, Copy)]
enum Shape {
    SimStandard,
    SimWide,
    Bundled,
    Setup,
    Continuum,
}

impl Shape {
    fn shape(self) -> JobShape {
        match self {
            Shape::SimStandard => JobShape::sim_standard(),
            Shape::SimWide => JobShape::sim(5),
            Shape::Bundled => JobShape::sim_bundled(6, 5),
            Shape::Setup => JobShape::setup(),
            Shape::Continuum => JobShape::continuum(3),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Try to place a job of the given shape under the given policy.
    Alloc(Shape, MatchPolicy),
    /// Release the k-th outstanding allocation (mod the live count).
    Release(usize),
    /// Drain node `k mod NODES`.
    Drain(u32),
    /// Undrain node `k mod NODES`.
    Undrain(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest's `prop_oneof!` is unweighted; duplicating the
    // alloc arm skews sequences toward placements so graphs actually fill.
    let shape = prop_oneof![
        Just(Shape::SimStandard),
        Just(Shape::SimStandard),
        Just(Shape::SimWide),
        Just(Shape::Bundled),
        Just(Shape::Setup),
        Just(Shape::Continuum),
    ];
    let policy = prop_oneof![
        Just(MatchPolicy::FirstMatch),
        Just(MatchPolicy::LowIdExhaustive),
    ];
    let alloc = (shape, policy).prop_map(|(s, p)| Op::Alloc(s, p));
    prop_oneof![
        alloc.clone(),
        alloc.clone(),
        alloc,
        any::<usize>().prop_map(Op::Release),
        any::<usize>().prop_map(Op::Release),
        (0..NODES).prop_map(Op::Drain),
        (0..NODES).prop_map(Op::Undrain),
    ]
}

fn machine() -> MachineSpec {
    MachineSpec::summit_allocation(NODES)
}

/// Full free masks of an untouched machine, in node-ID order.
fn full_masks(spec: &MachineSpec) -> Vec<(u64, u8)> {
    let cores = (1u64 << spec.node.cores()) - 1;
    let gpus = ((1u16 << spec.node.gpus) - 1) as u8;
    vec![(cores, gpus); spec.nodes as usize]
}

/// The free masks implied by a set of outstanding allocations, plus a
/// double-booking check: panics if any two grants overlap.
fn expected_masks(spec: &MachineSpec, outstanding: &[Alloc]) -> Vec<(u64, u8)> {
    let mut masks = full_masks(spec);
    for a in outstanding {
        for s in &a.slices {
            let (free_c, free_g) = masks[s.node as usize];
            assert_eq!(
                free_c & s.core_mask,
                s.core_mask,
                "core double-booking on node {}",
                s.node
            );
            assert_eq!(
                free_g & s.gpu_mask,
                s.gpu_mask,
                "gpu double-booking on node {}",
                s.node
            );
            masks[s.node as usize] = (free_c & !s.core_mask, free_g & !s.gpu_mask);
        }
    }
    masks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No core or GPU is ever granted twice, and the graph's free set is
    /// exactly the machine minus the union of outstanding grants.
    #[test]
    fn no_double_booking(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut g = ResourceGraph::new(machine());
        let mut outstanding: Vec<Alloc> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(s, p) => {
                    if let Some(a) = g.try_alloc(&s.shape(), p) {
                        outstanding.push(a);
                    }
                }
                Op::Release(k) => {
                    if !outstanding.is_empty() {
                        let a = outstanding.remove(k % outstanding.len());
                        g.release(&a);
                    }
                }
                Op::Drain(n) => g.drain(n),
                Op::Undrain(n) => g.undrain(n),
            }
            prop_assert_eq!(g.free_masks(), expected_masks(g.spec(), &outstanding));
            prop_assert!(g.validate_index().is_ok(), "{:?}", g.validate_index());
        }
        // Usage counters agree with the grants we hold.
        let held_gpus: u64 = outstanding.iter().map(|a| a.gpus()).sum();
        let held_cores: u64 = outstanding.iter().map(|a| a.cores()).sum();
        prop_assert_eq!(g.gpu_usage().0, held_gpus);
        prop_assert_eq!(g.cpu_usage().0, held_cores);
    }

    /// Claim + release restores the exact prior free set, from any
    /// reachable intermediate state.
    #[test]
    fn claim_release_round_trips(
        ops in proptest::collection::vec(arb_op(), 0..40),
        probe in prop_oneof![
            Just(Shape::SimStandard),
            Just(Shape::SimWide),
            Just(Shape::Bundled),
            Just(Shape::Setup),
            Just(Shape::Continuum),
        ],
        policy in prop_oneof![
            Just(MatchPolicy::FirstMatch),
            Just(MatchPolicy::LowIdExhaustive),
        ],
    ) {
        let mut g = ResourceGraph::new(machine());
        let mut outstanding: Vec<Alloc> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(s, p) => {
                    if let Some(a) = g.try_alloc(&s.shape(), p) {
                        outstanding.push(a);
                    }
                }
                Op::Release(k) => {
                    if !outstanding.is_empty() {
                        let a = outstanding.remove(k % outstanding.len());
                        g.release(&a);
                    }
                }
                Op::Drain(n) => g.drain(n),
                Op::Undrain(n) => g.undrain(n),
            }
        }
        let before = g.free_masks();
        if let Some(a) = g.try_alloc(&probe.shape(), policy) {
            prop_assert_ne!(g.free_masks(), before.clone());
            g.release(&a);
        }
        prop_assert_eq!(g.free_masks(), before);
        prop_assert!(g.validate_index().is_ok());
    }

    /// The indexed matcher is observationally identical to the retained
    /// linear matcher: same grants, same visit counts, same end state.
    #[test]
    fn indexed_matches_linear_oracle(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut indexed = ResourceGraph::new(machine());
        let mut linear = ResourceGraph::new(machine());
        linear.set_linear_scan(true);
        let mut outstanding: Vec<Alloc> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(s, p) => {
                    let a_idx = indexed.try_alloc(&s.shape(), p);
                    let a_lin = linear.try_alloc(&s.shape(), p);
                    prop_assert_eq!(&a_idx, &a_lin, "matchers diverged on {:?}", op);
                    prop_assert_eq!(
                        indexed.visited_last(),
                        linear.visited_last(),
                        "visit counts diverged on {:?}",
                        op
                    );
                    if let Some(a) = a_idx {
                        outstanding.push(a);
                    }
                }
                Op::Release(k) => {
                    if !outstanding.is_empty() {
                        let a = outstanding.remove(k % outstanding.len());
                        indexed.release(&a);
                        linear.release(&a);
                    }
                }
                Op::Drain(n) => {
                    indexed.drain(n);
                    linear.drain(n);
                }
                Op::Undrain(n) => {
                    indexed.undrain(n);
                    linear.undrain(n);
                }
            }
            prop_assert_eq!(indexed.free_masks(), linear.free_masks());
            prop_assert!(indexed.validate_index().is_ok());
        }
        prop_assert_eq!(indexed.visited_total(), linear.visited_total());
        prop_assert_eq!(indexed.gpu_usage(), linear.gpu_usage());
        prop_assert_eq!(indexed.cpu_usage(), linear.cpu_usage());
    }
}
