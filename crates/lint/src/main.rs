//! `mummi-lint` binary: `cargo run -p lint [-- --json|--github] [root]`.
//!
//! `--github` renders violations as GitHub Actions `::error` workflow
//! commands, so a CI lint step annotates the offending lines inline on
//! the PR diff.
//!
//! Exit codes: 0 clean, 1 violations found, 2 operational error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut github = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--github" => github = true,
            "--help" | "-h" => {
                eprintln!("usage: lint [--json] [--github] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("lint: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory)");
                return ExitCode::from(2);
            }
        },
    };

    match lint::lint_workspace(&root) {
        Ok(violations) => {
            if json {
                println!("{}", lint::to_json(&violations));
            } else {
                // --github: annotation commands on stdout (the runner
                // parses them), human diagnostics stay on stderr.
                if github {
                    for v in &violations {
                        println!("{}", v.to_github());
                    }
                }
                for v in &violations {
                    eprintln!("{v}");
                }
                if violations.is_empty() {
                    eprintln!("mummi-lint: workspace clean (L1-L9)");
                } else {
                    eprintln!("mummi-lint: {} violation(s)", violations.len());
                }
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory (falling back to the crate's own
/// location under `crates/lint`) to the `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let start = std::env::current_dir()
        .ok()
        .or_else(|| option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from))?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}
