//! `mummi-lint`: the workspace determinism & coordination-invariant pass.
//!
//! The campaign results this repository reproduces (Table 1, Figs 3-8)
//! are only meaningful if the discrete-event replay is bit-deterministic
//! and the coordination path cannot die on an unchecked failure. This
//! crate walks every `.rs` file in the workspace and enforces the
//! contract DESIGN.md promises:
//!
//! - **L1** — no wall-clock time sources (`Instant::now`,
//!   `SystemTime::now`, argless `chrono` constructors). `simcore::SimTime`
//!   is the only clock; benchmarks that measure real hardware time carry
//!   an explicit exemption in `lint.toml`.
//! - **L2** — no unseeded randomness (`thread_rng`, `rand::random`)
//!   anywhere, tests included. All stochastic components draw from
//!   `simcore::rng::SeedStream` or an explicitly seeded `StdRng`.
//! - **L3** — no order-nondeterministic containers (`HashMap`/`HashSet`)
//!   in non-test code of the coordination crates (`sched`, `mummi-core`,
//!   `campaign`, `kvstore`, `taridx`, `datastore`, `trace`). Iteration
//!   order there reaches scheduling and feedback decisions — and, through
//!   `DataStore::list` and the tracer's byte-identical traces, campaign
//!   outputs; use `BTreeMap`/`BTreeSet`, or annotate a justified
//!   key-access-only use with `// lint: allow(L3)`.
//! - **L4** — no `unwrap()`/`expect()` in non-test code of the
//!   coordination-path crates (`sched`, `mummi-core`, `campaign`,
//!   `datastore`). Grandfathered files carry a per-file budget in
//!   `lint.toml`; a budget larger than the real count is itself an error,
//!   so the allowlist can only ratchet down.
//! - **L5** — no raw `.state =` writes in `crates/sched` outside
//!   `src/job.rs`. Job lifecycle transitions go through
//!   `TrackedState::advance_to`, which checks membership in the exported
//!   `sched::ALLOWED_TRANSITIONS` table — keeping that table exhaustive
//!   over the code by construction.
//!
//! The parallelism-readiness rules (the gate ROADMAP item 1 — deterministic
//! intra-campaign parallelism — merges through; see DESIGN.md § 6.1):
//!
//! - **L6** — no shared-mutable-state primitives (`Mutex`, `RwLock`,
//!   `RefCell`, `Cell<`, `static mut`, `unsafe`, atomic types) in non-test
//!   code of the coordination crates without a *reasoned* allow
//!   (`// lint: allow(L6: <why>)`). `Ordering::Relaxed` is an error
//!   everywhere, tests and allows included — Acquire/Release or SeqCst
//!   only.
//! - **L7** — no float reduction (`.sum`/`.fold`/`.reduce`) fed directly
//!   by a parallel iterator in the same statement. Parallel results flow
//!   through the ordered-indexed-collect idiom `campaign::sweep` uses
//!   (`.collect()` into input order, reduce serially); integer turbofish
//!   reductions (`.sum::<u64>()`) are exact under any order and pass.
//! - **L8** — parallelism entry points (`thread::spawn`, `rayon::spawn`/
//!   `rayon::join`, the `par_iter`/`par_chunks` families) only in modules
//!   enumerated in `lint.toml [l8_parallel]` or behind a reasoned allow —
//!   a new parallel region is a reviewed config change, not a silent
//!   diff. Entries that no longer match a parallel entry point are
//!   themselves flagged, so the table can only shrink.
//! - **L9** — every `SeedStream::fork`/`fork_indexed` label in non-test
//!   code is a string literal, and labels are globally unique across the
//!   workspace (a cross-file check), pinning the guarantee that each
//!   stochastic process owns a stable, collision-free stream.
//!
//! The scanner is deliberately a *token* pass over comment- and
//! string-masked source, not a full parser: the workspace vendors no
//! `syn`, and every invariant above is expressible on masked tokens. The
//! cost is conservatism (L3 bans the type, not just its iteration), paid
//! for with inline `// lint: allow(..)` escapes that reviewers can see.
//! L6–L9 escapes must carry a written reason; bare allows are themselves
//! violations there.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier: "L1".."L9" (or "config" for lint.toml problems).
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}:{}",
            self.rule, self.message, self.file, self.line
        )
    }
}

impl Violation {
    /// GitHub Actions workflow-command annotation (`::error ...`): CI
    /// prints these so violations appear inline on the PR diff.
    pub fn to_github(&self) -> String {
        format!(
            "::error file={},line={},title=mummi-lint {}::{}",
            github_escape_property(&self.file),
            self.line,
            github_escape_property(self.rule),
            github_escape_data(&self.message)
        )
    }

    /// Machine-readable JSON object (no external serializer available).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape_json(self.rule),
            escape_json(&self.file),
            self.line,
            escape_json(&self.message)
        )
    }
}

/// Renders a violation list as a JSON array.
pub fn to_json(violations: &[Violation]) -> String {
    let items: Vec<String> = violations.iter().map(Violation::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Workflow-command *property* escaping (file/title fields): the runner
/// parses `,` and `:` as delimiters there, on top of the data escapes.
fn github_escape_property(s: &str) -> String {
    github_escape_data(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Workflow-command *data* escaping (the message after `::`).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parsed `lint.toml`: the only mutable surface of the contract.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files allowed to read the host clock, with a reason each.
    pub l1_exempt: BTreeMap<String, String>,
    /// Per-file `unwrap()`/`expect()` budgets for grandfathered code.
    pub l4_allow: BTreeMap<String, u64>,
    /// Files allowed to contain parallelism entry points, with a reason
    /// each (L8). Stale entries — files with no parallel entry point
    /// left — are flagged, so this table can only shrink.
    pub l8_parallel: BTreeMap<String, String>,
}

impl Config {
    /// Parses the small TOML subset `lint.toml` uses: `[section]` headers
    /// and `"quoted key" = value` entries (string or integer values).
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "l1_exempt" && section != "l4_allow" && section != "l8_parallel" {
                    return Err(format!(
                        "lint.toml:{}: unknown section [{section}]",
                        idx + 1
                    ));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
            let key = key.trim().trim_matches('"').replace('\\', "/");
            let value = value.trim();
            match section.as_str() {
                "l1_exempt" => {
                    let reason = value.trim_matches('"').to_string();
                    cfg.l1_exempt.insert(key, reason);
                }
                "l4_allow" => {
                    let n: u64 = value
                        .parse()
                        .map_err(|_| format!("lint.toml:{}: budget must be an integer", idx + 1))?;
                    cfg.l4_allow.insert(key, n);
                }
                "l8_parallel" => {
                    let reason = value.trim_matches('"').to_string();
                    if reason.is_empty() {
                        return Err(format!(
                            "lint.toml:{}: [l8_parallel] entries need a written reason",
                            idx + 1
                        ));
                    }
                    cfg.l8_parallel.insert(key, reason);
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{}: entry outside a known section",
                        idx + 1
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Loads `lint.toml` from the workspace root; a missing file means an
    /// empty config (no exemptions, zero budgets).
    pub fn load(root: &Path) -> Result<Config, String> {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("reading lint.toml: {e}")),
        }
    }
}

/// Crates whose non-test code must be free of `unwrap()`/`expect()` (L4).
pub const COORDINATION_CRATES: &[&str] = &["sched", "mummi-core", "campaign", "datastore", "chaos"];

/// Crates whose non-test code must not use order-nondeterministic
/// containers (L3). `taridx` and `datastore` are here because listing
/// order leaks through `DataStore::list` into feedback folds, `trace`
/// because the tracer's byte-identical-output guarantee is itself the
/// determinism regression detector, and `workload` because its
/// generators promise seed-stable, cadence-invariant arrival streams —
/// an unordered map anywhere in a draw path would break replay.
pub const ORDERED_CRATES: &[&str] = &[
    "sched",
    "mummi-core",
    "campaign",
    "kvstore",
    "taridx",
    "datastore",
    "trace",
    "chaos",
    "workload",
];

/// Crates whose non-test code must be free of shared-mutable-state
/// primitives (L6): everything the deterministic replay path runs
/// through. Unsynchronized sharing there is what makes ROADMAP item 1
/// (intra-campaign parallelism) able to break the byte-identical-trace
/// bar silently, so it must be impossible by construction, not merely
/// tested-for.
pub const L6_CRATES: &[&str] = &[
    "sched",
    "mummi-core",
    "campaign",
    "kvstore",
    "taridx",
    "datastore",
    "trace",
    "chaos",
    "simcore",
    "resources",
    // The farm's async shell is allowed exactly one shared structure —
    // the submission queue behind a single Mutex (reasoned inline
    // allows). Listing the crate here keeps any second one from
    // appearing silently.
    "farm",
    // Same discipline for the store tier: shared state is the per-shard
    // WAL handles and the server's edge-side flags, each with a
    // reasoned inline allow; anything new must be argued here too.
    "storeserver",
];

const L1_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "Utc::now", "Local::now"];
const L2_TOKENS: &[&str] = &[
    "thread_rng",
    "rand::random",
    "OsRng",
    "from_entropy",
    "getrandom",
];
const L3_TOKENS: &[&str] = &["HashMap", "HashSet"];
const L6_TOKENS: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell<",
    "static mut",
    "unsafe",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];
/// Parallel-iterator entry points: arm the L7 statement window and count
/// as L8 entry points.
const PAR_ITER_TOKENS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_extend",
    "par_sort",
    "par_sort_unstable",
];
/// Non-iterator parallelism entry points (L8 only).
const PAR_SPAWN_TOKENS: &[&str] = &["thread::spawn", "rayon::spawn", "rayon::join"];
/// Reduction calls L7 refuses inside an armed parallel statement window.
const L7_REDUCERS: &[&str] = &[".sum", ".fold", ".reduce"];

/// Runs the full pass over the workspace rooted at `root`.
///
/// `root` must contain the workspace `Cargo.toml`; `lint.toml` beside it
/// configures exemptions. Returns all violations, stably ordered by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let config = Config::load(root)?;
    lint_workspace_with(root, &config)
}

/// Like [`lint_workspace`], with an explicit config (used by tests).
pub fn lint_workspace_with(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut state = ScanState::default();

    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        lint_file(&rel_str, &source, config, &mut violations, &mut state);
    }

    finish_scan(config, &state, &mut violations);

    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(violations)
}

/// Cross-file scanner state threaded through [`lint_file`] calls and
/// resolved by [`finish_scan`]. Per-file passes can only see one file;
/// the L4 ratchet, L8 allowlist ratchet, and L9 label uniqueness are
/// workspace properties, so they accumulate here.
#[derive(Debug, Clone, Default)]
pub struct ScanState {
    /// `.unwrap()`/`.expect(` hits per coordination-path file.
    pub l4_counts: BTreeMap<String, u64>,
    /// `[l8_parallel]` entries that matched a real parallelism entry point.
    pub l8_used: BTreeSet<String>,
    /// `SeedStream` fork label -> non-test call sites (file, line).
    pub l9_labels: BTreeMap<String, Vec<(String, usize)>>,
}

/// The cross-file checks, run once after every file went through
/// [`lint_file`]: the L4 budget ratchet, stale `[l8_parallel]` entries,
/// and L9 global label uniqueness.
pub fn finish_scan(config: &Config, state: &ScanState, violations: &mut Vec<Violation>) {
    // L4 ratchet: a budget above the real count is stale — shrink it.
    for (file, &budget) in &config.l4_allow {
        let actual = state.l4_counts.get(file).copied().unwrap_or(0);
        if budget > actual {
            violations.push(Violation {
                rule: "L4",
                file: "lint.toml".to_string(),
                line: 1,
                message: format!(
                    "allowlist budget for {file} is {budget} but the file has {actual} \
                     unwrap()/expect() calls; budgets may only ratchet down"
                ),
            });
        }
    }

    // L8 ratchet: an allowlisted file with no parallelism entry point
    // left is stale — the table may only shrink.
    for file in config.l8_parallel.keys() {
        if !state.l8_used.contains(file) {
            violations.push(Violation {
                rule: "L8",
                file: "lint.toml".to_string(),
                line: 1,
                message: format!(
                    "[l8_parallel] entry {file} matched no parallelism entry point; \
                     the allowlist may only shrink — remove the entry"
                ),
            });
        }
    }

    // L9: fork labels are globally unique. Two processes drawing from the
    // same stream family would correlate exactly the randomness the
    // per-component-stream design exists to decouple.
    for (label, sites) in &state.l9_labels {
        if sites.len() > 1 {
            let all: Vec<String> = sites.iter().map(|(f, l)| format!("{f}:{l}")).collect();
            for (file, line) in sites {
                violations.push(Violation {
                    rule: "L9",
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "duplicate SeedStream fork label \"{label}\" (all sites: {}) — \
                         each stochastic process owns a unique stream; pick a distinct literal",
                        all.join(", ")
                    ),
                });
            }
        }
    }
}

/// Lints one file's source text. Exposed for the scratch-violation tests.
/// Cross-file rules (L4 ratchet, L8 ratchet, L9 uniqueness) accumulate in
/// `state` and are resolved by [`finish_scan`].
pub fn lint_file(
    rel: &str,
    source: &str,
    config: &Config,
    violations: &mut Vec<Violation>,
    state: &mut ScanState,
) {
    let crate_name = crate_of(rel);
    let masked = mask_source(source);
    let test_lines = test_region_lines(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();
    // A file under `tests/` or `benches/` is integration-test code.
    let integration_test = rel.split('/').any(|c| c == "tests" || c == "benches");

    for (i, line) in masked.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let in_tests = integration_test || test_lines.get(i).copied().unwrap_or(false);

        // L1: wall-clock sources, everywhere (tests included — virtual-time
        // assertions must not compare against the host clock) except
        // explicitly exempt files.
        if !config.l1_exempt.contains_key(rel) && !has_allow(raw, "L1") {
            for tok in L1_TOKENS {
                if contains_token(line, tok) {
                    violations.push(Violation {
                        rule: "L1",
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "wall-clock time source `{tok}` — simcore::SimTime is the only \
                             clock (benchmarks belong in [l1_exempt] of lint.toml)"
                        ),
                    });
                }
            }
        }

        // L2: unseeded randomness, everywhere.
        if !has_allow(raw, "L2") {
            for tok in L2_TOKENS {
                if contains_token(line, tok) {
                    violations.push(Violation {
                        rule: "L2",
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "unseeded randomness `{tok}` — draw from simcore::rng::SeedStream \
                             or a seeded StdRng"
                        ),
                    });
                }
            }
        }

        // L3: order-nondeterministic containers in coordination crates.
        if ORDERED_CRATES.contains(&crate_name) && !in_tests && !has_allow(raw, "L3") {
            for tok in L3_TOKENS {
                if contains_token(line, tok) {
                    violations.push(Violation {
                        rule: "L3",
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{tok}` in coordination crate `{crate_name}` — iteration order \
                             reaches scheduling/feedback decisions; use BTreeMap/BTreeSet \
                             (or `// lint: allow(L3)` for key-access-only use)"
                        ),
                    });
                }
            }
        }

        // L4: unwrap/expect in coordination-path non-test code.
        if COORDINATION_CRATES.contains(&crate_name) && !in_tests {
            let hits = count_token(line, ".unwrap()") + count_token(line, ".expect(");
            if hits > 0 {
                *state.l4_counts.entry(rel.to_string()).or_insert(0) += hits as u64;
                let budget = config.l4_allow.get(rel).copied().unwrap_or(0);
                if state.l4_counts[rel] > budget {
                    violations.push(Violation {
                        rule: "L4",
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "unwrap()/expect() on the coordination path (file budget {budget} \
                             in lint.toml) — propagate a typed error instead"
                        ),
                    });
                }
            }
        }

        // L5: raw JobState writes in sched outside the state-machine module.
        if crate_name == "sched"
            && !in_tests
            && !rel.ends_with("src/job.rs")
            && !has_allow(raw, "L5")
        {
            if let Some(col) = find_raw_state_write(line) {
                let _ = col;
                violations.push(Violation {
                    rule: "L5",
                    file: rel.to_string(),
                    line: lineno,
                    message: "raw `.state =` write — job lifecycle transitions must go \
                              through TrackedState::advance_to so sched::ALLOWED_TRANSITIONS \
                              stays exhaustive"
                        .to_string(),
                });
            }
        }

        // L6: shared-mutable-state primitives in coordination crates.
        // Once the event loop is partitioned across threads (ROADMAP
        // item 1), any of these can turn a same-seed replay into a race;
        // each surviving use carries a written reason.
        if L6_CRATES.contains(&crate_name) && !in_tests {
            let allow = allow_of(raw, "L6");
            if allow != Allow::Reasoned {
                for tok in L6_TOKENS {
                    if contains_token(line, tok) {
                        let message = if allow == Allow::Bare {
                            format!(
                                "`{tok}` under a bare allow — L6 escapes must carry a \
                                 written reason: `// lint: allow(L6: <why>)`"
                            )
                        } else {
                            format!(
                                "shared-mutable-state primitive `{tok}` in coordination \
                                 crate `{crate_name}` — unsynchronized sharing breaks \
                                 deterministic parallel replay; restructure, or justify \
                                 with `// lint: allow(L6: <why>)`"
                            )
                        };
                        violations.push(Violation {
                            rule: "L6",
                            file: rel.to_string(),
                            line: lineno,
                            message,
                        });
                    }
                }
            }
        }
        // Ordering::Relaxed is an error everywhere — tests and allows
        // included. Relaxed loads/stores legalize exactly the reorderings
        // that make two same-seed parallel replays observe different
        // interleavings; Acquire/Release or SeqCst only.
        if contains_token(line, "Ordering::Relaxed") {
            violations.push(Violation {
                rule: "L6",
                file: rel.to_string(),
                line: lineno,
                message: "`Ordering::Relaxed` — relaxed atomics have no escape hatch; \
                          use Acquire/Release or SeqCst"
                    .to_string(),
            });
        }

        // L8: parallelism entry points only in allowlisted modules. Test
        // code is exempt: concurrency stress tests exercise the thread
        // safety the types promise and never run on the replay path.
        if !in_tests {
            for tok in PAR_ITER_TOKENS.iter().chain(PAR_SPAWN_TOKENS) {
                if contains_token(line, tok) {
                    if config.l8_parallel.contains_key(rel) {
                        state.l8_used.insert(rel.to_string());
                        continue;
                    }
                    match allow_of(raw, "L8") {
                        Allow::Reasoned => {}
                        Allow::Bare => violations.push(Violation {
                            rule: "L8",
                            file: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "`{tok}` under a bare allow — L8 escapes must carry a \
                                 written reason: `// lint: allow(L8: <why>)`"
                            ),
                        }),
                        Allow::None => violations.push(Violation {
                            rule: "L8",
                            file: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "parallelism entry point `{tok}` outside the \
                                 [l8_parallel] allowlist — a new parallel region is a \
                                 reviewed lint.toml change (or a reasoned \
                                 `// lint: allow(L8: <why>)`)"
                            ),
                        }),
                    }
                }
            }
        }

        // L9: SeedStream fork labels must be string literals (uniqueness
        // is checked across the workspace in finish_scan). Test code is
        // exempt — determinism tests deliberately re-fork a label to
        // assert the same family comes back.
        if !in_tests {
            lint_l9_line(rel, raw, line, lineno, violations, state);
        }
    }

    // L7 runs as its own pass: the statement window between a parallel
    // iterator and a reduction routinely spans lines.
    lint_l7(rel, &masked, &raw_lines, violations);
}

/// L7: a float reduction fed directly by a parallel iterator. A `par_*`
/// token arms a statement window at its brace depth; a `;` at that depth
/// (or the enclosing block closing) disarms it. A `.sum`/`.fold`/
/// `.reduce` inside an armed window reduces in task-completion order,
/// not input order — for floats that is a different answer per run. The
/// prescribed shape is `campaign::sweep`'s ordered indexed collect:
/// `.collect()` into input order (which never fires), then reduce
/// serially in the next statement. Integer turbofish reductions
/// (`.sum::<u64>()`) are exact under any order and pass.
fn lint_l7(rel: &str, masked: &str, raw_lines: &[&str], violations: &mut Vec<Violation>) {
    let mut depth: i32 = 0;
    let mut armed: Option<i32> = None;
    for (idx, line) in masked.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if armed.is_some_and(|d| depth < d) {
                        armed = None;
                    }
                }
                b';' => {
                    if armed.is_some_and(|d| depth <= d) {
                        armed = None;
                    }
                }
                _ => {
                    if let Some(tok) = PAR_ITER_TOKENS.iter().find(|t| token_at(line, i, t)) {
                        armed = Some(depth);
                        i += tok.len();
                        continue;
                    }
                    if let Some(tok) = L7_REDUCERS.iter().find(|t| token_at(line, i, t)) {
                        let end = i + tok.len();
                        if armed.is_some() && !integer_turbofish(line, end) {
                            let raw = raw_lines.get(idx).copied().unwrap_or("");
                            match allow_of(raw, "L7") {
                                Allow::Reasoned => {}
                                Allow::Bare => violations.push(Violation {
                                    rule: "L7",
                                    file: rel.to_string(),
                                    line: idx + 1,
                                    message: format!(
                                        "`{tok}` under a bare allow — L7 escapes must \
                                         carry a written reason: `// lint: allow(L7: <why>)`"
                                    ),
                                }),
                                Allow::None => violations.push(Violation {
                                    rule: "L7",
                                    file: rel.to_string(),
                                    line: idx + 1,
                                    message: format!(
                                        "`{tok}` fed by a parallel iterator in the same \
                                         statement — float reductions in completion order \
                                         are nondeterministic; collect in input order \
                                         (ordered indexed collect, see campaign::sweep) \
                                         and reduce serially, give the reduction an \
                                         integer turbofish, or justify with \
                                         `// lint: allow(L7: <why>)`"
                                    ),
                                }),
                            }
                        }
                        i = end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
}

/// L9 per-line scan: `.fork(` / `.fork_indexed(` calls must label with a
/// string literal on the call line, and every literal label is recorded
/// for the cross-file uniqueness check.
fn lint_l9_line(
    rel: &str,
    raw: &str,
    line: &str,
    lineno: usize,
    violations: &mut Vec<Violation>,
    state: &mut ScanState,
) {
    let bytes = line.as_bytes();
    for callee in [".fork_indexed", ".fork"] {
        let mut from = 0;
        while let Some(pos) = find_token(line, callee, from) {
            from = pos + callee.len();
            // Only calls: the method name immediately followed by `(`.
            if bytes.get(pos + callee.len()) != Some(&b'(') {
                continue;
            }
            match allow_of(raw, "L9") {
                Allow::Reasoned => continue,
                Allow::Bare => {
                    violations.push(Violation {
                        rule: "L9",
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{callee}` under a bare allow — L9 escapes must carry a \
                             written reason: `// lint: allow(L9: <why>)`"
                        ),
                    });
                    continue;
                }
                Allow::None => {}
            }
            let mut i = pos + callee.len() + 1;
            while bytes.get(i) == Some(&b' ') {
                i += 1;
            }
            if bytes.get(i) != Some(&b'"') {
                violations.push(Violation {
                    rule: "L9",
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{callee}` label must be a string literal on the call line — \
                         derive per-index streams with `fork_indexed(\"name\", i)`, or \
                         justify a computed label with `// lint: allow(L9: <why>)`"
                    ),
                });
                continue;
            }
            // Masking blanks string *contents* but keeps the quotes at
            // their original byte offsets, so the closing quote in the
            // masked line marks the literal's end in the raw line too.
            let open = i;
            match line[open + 1..].find('"') {
                Some(off) => {
                    let close = open + 1 + off;
                    let label = raw[open + 1..close].to_string();
                    state
                        .l9_labels
                        .entry(label)
                        .or_default()
                        .push((rel.to_string(), lineno));
                }
                None => violations.push(Violation {
                    rule: "L9",
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{callee}` label literal must open and close on the call line"
                    ),
                }),
            }
        }
    }
}

/// True when `line[pos..]` starts with `token` respecting the same
/// identifier-boundary guards as [`find_token`].
fn token_at(line: &str, pos: usize, token: &str) -> bool {
    let Some(rest) = line.get(pos..) else {
        return false;
    };
    if !rest.starts_with(token) {
        return false;
    }
    let bytes = line.as_bytes();
    let guard_front = token
        .as_bytes()
        .first()
        .map(|&b| is_ident_byte(b))
        .unwrap_or(false);
    let guard_back = token
        .as_bytes()
        .last()
        .map(|&b| is_ident_byte(b))
        .unwrap_or(false);
    let before_ok = !guard_front || pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let end = pos + token.len();
    let after_ok = !guard_back || end >= bytes.len() || !is_ident_byte(bytes[end]);
    before_ok && after_ok
}

/// True when position `i` (just past a reducer token) is an integer
/// turbofish like `::<u64>` — exact under any summation order.
fn integer_turbofish(line: &str, mut i: usize) -> bool {
    let bytes = line.as_bytes();
    while bytes.get(i) == Some(&b' ') {
        i += 1;
    }
    if !line.get(i..).is_some_and(|s| s.starts_with("::<")) {
        return false;
    }
    i += 3;
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    matches!(
        &line[start..i],
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// How a line escapes a rule, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Allow {
    /// No allow for this rule on the line.
    None,
    /// `// lint: allow(L3)` — bare. Sufficient for L1–L5; a violation of
    /// its own for L6–L9, which require a written reason.
    Bare,
    /// `// lint: allow(L6: <why>)` — carries a non-empty reason.
    Reasoned,
}

/// Parses the inline escape hatch for `rule` out of a raw source line.
fn allow_of(raw_line: &str, rule: &str) -> Allow {
    let Some(pos) = raw_line.find("lint: allow(") else {
        return Allow::None;
    };
    let rest = &raw_line[pos..];
    let reasoned_prefix = format!("allow({rule}:");
    if let Some(p) = rest.find(&reasoned_prefix) {
        let after = &rest[p + reasoned_prefix.len()..];
        if let Some(close) = after.find(')') {
            if !after[..close].trim().is_empty() {
                return Allow::Reasoned;
            }
        }
        // `allow(L6:)` with an empty or unterminated reason.
        return Allow::Bare;
    }
    if rest.contains(&format!("allow({rule})")) {
        return Allow::Bare;
    }
    Allow::None
}

/// Inline escape hatch for the L1–L5 rules, where a bare
/// `// lint: allow(L3)` is sufficient (reasons are encouraged as
/// trailing prose, as existing sites do).
fn has_allow(raw_line: &str, rule: &str) -> bool {
    allow_of(raw_line, rule) != Allow::None
}

/// Token search with identifier-boundary checks on both sides, so
/// `HashMap` does not match `MyHashMapLike` and `thread_rng` does not
/// match `thread_rngs`.
fn contains_token(line: &str, token: &str) -> bool {
    find_token(line, token, 0).is_some()
}

fn count_token(line: &str, token: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = find_token(line, token, from) {
        n += 1;
        from = pos + token.len();
    }
    n
}

fn find_token(line: &str, token: &str, from: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    // Boundary checks only make sense on edges that are themselves
    // identifier characters: ".unwrap()" needs neither, "HashMap" both.
    let guard_front = token
        .as_bytes()
        .first()
        .map(|&b| is_ident_byte(b))
        .unwrap_or(false);
    let guard_back = token
        .as_bytes()
        .last()
        .map(|&b| is_ident_byte(b))
        .unwrap_or(false);
    let mut start = from;
    while let Some(off) = line.get(start..).and_then(|s| s.find(token)) {
        let pos = start + off;
        let before_ok = !guard_front || pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let end = pos + token.len();
        let after_ok = !guard_back || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Finds an assignment to a field named `state` (`.state =`, not `==`,
/// `>=`, `!=`, or a `state:` struct-literal field, which the type system
/// already restricts to `TrackedState` constructors).
fn find_raw_state_write(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = find_token(line, ".state", from) {
        let mut i = pos + ".state".len();
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'=' && bytes.get(i + 1) != Some(&b'=') {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

/// Replaces the contents of comments, string/char literals, and raw
/// strings with spaces, preserving byte length and line structure so line
/// numbers survive. Tokens inside docs or log strings can then never
/// trigger a rule.
pub fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                }
                b'r' if is_raw_str_start(bytes, i) => {
                    let hashes = count_hashes(bytes, i + 1);
                    state = State::RawStr(hashes);
                    out.resize(out.len() + 2 + hashes as usize, b' ');
                    i += 2 + hashes as usize;
                }
                b'b' if bytes.get(i + 1) == Some(&b'"') => {
                    state = State::Str;
                    out.extend_from_slice(b" \"");
                    i += 2;
                }
                // Distinguish a char literal from a lifetime: a char
                // literal closes with `'` within a couple of chars (or
                // starts with a backslash escape).
                b'\''
                    if bytes.get(i + 1) == Some(&b'\\')
                        || (bytes.get(i + 2) == Some(&b'\'')
                            && bytes.get(i + 1) != Some(&b'\'')) =>
                {
                    state = State::Char;
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => match b {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                }
                b'\n' => {
                    out.push(b'\n');
                    i += 1;
                }
                _ => {
                    out.push(b' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i + 1, hashes) {
                    out.resize(out.len() + 1 + hashes as usize, b' ');
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => match b {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'\'' => {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(b' ');
                    i += 1;
                }
            },
        }
    }
    // Escapes at EOF can overshoot by one; clamp to input length.
    out.truncate(bytes.len());
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_str_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"` (also `br"` handled by the b-prefix arm falling
    // through to the plain-string arm; good enough for this tree).
    let prev_is_ident = i > 0 && is_ident_byte(bytes[i - 1]);
    if prev_is_ident {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> u32 {
    let mut n = 0;
    while bytes.get(i) == Some(&b'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(bytes: &[u8], mut i: usize, hashes: u32) -> bool {
    for _ in 0..hashes {
        if bytes.get(i) != Some(&b'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// Per-line flags marking `#[cfg(test)]` regions (attribute through the
/// matching close brace of the item it gates).
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let n_lines = masked.lines().count();
    let mut flags = vec![false; n_lines];
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(off) = masked.get(search..).and_then(|s| s.find("#[cfg(test)]")) {
        let start = search + off;
        // Find the first `{` after the attribute, then its matching `}`.
        let mut depth = 0i32;
        let mut i = start;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let start_line = masked[..start].bytes().filter(|&b| b == b'\n').count();
        let end_line = masked[..end.min(bytes.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        for flag in flags
            .iter_mut()
            .take((end_line + 1).min(n_lines))
            .skip(start_line)
        {
            *flag = true;
        }
        search = end.max(start + 1);
    }
    flags
}

/// Maps a workspace-relative path to its crate name: `crates/<name>/...`
/// or the root package for `src/`, `tests/`, `benches/`.
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        _ => "mummi",
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // target/ and dot-dirs are build products.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            let rel_dir = path
                .strip_prefix(root)
                .map(|r| r.to_string_lossy().replace(std::path::MAIN_SEPARATOR, "/"))
                .unwrap_or_default();
            // Vendored stand-ins for crates.io deps are not our code —
            // but ONLY at the canonical crates/vendor/ location. A
            // directory that merely happens to be named `vendor`
            // elsewhere is scanned like everything else, so real code
            // cannot hide from the pass behind a directory name.
            if rel_dir == "crates/vendor" {
                continue;
            }
            // The lint crate's own fixture corpus is scanner test *data*
            // (each subdirectory is a scratch workspace full of seeded
            // violations), not workspace code.
            if rel_dir == "crates/lint/tests/corpus" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"Instant::now\"; // SystemTime::now\nlet b = 1;";
        let m = mask_source(src);
        assert!(!m.contains("Instant::now"));
        assert!(!m.contains("SystemTime::now"));
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.contains("let b = 1;"));
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let r = r#\"HashMap here\"#; let c = 'x'; let lt: &'static str = \"y\";";
        let m = mask_source(src);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("'static"));
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("struct MyHashMapLike;", "HashMap"));
        assert!(!contains_token("let thread_rngs = 3;", "thread_rng"));
        assert_eq!(count_token("a.unwrap().unwrap()", ".unwrap()"), 2);
    }

    #[test]
    fn raw_state_write_detection() {
        assert!(find_raw_state_write("rec.state = JobState::Queued;").is_some());
        assert!(find_raw_state_write("if rec.state == JobState::Queued {").is_none());
        assert!(find_raw_state_write("rec.state.advance_to(JobState::Queued);").is_none());
        assert!(find_raw_state_write("state: TrackedState::submitted(),").is_none());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let flags = test_region_lines(src);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn config_parses_sections_and_ratchet_types() {
        let cfg = Config::parse(
            "# comment\n[l1_exempt]\n\"crates/bench/src/bin/x.rs\" = \"measures real time\"\n\
             [l4_allow]\n\"crates/sched/src/engine.rs\" = 3\n\
             [l8_parallel]\n\"crates/campaign/src/sweep.rs\" = \"ordered indexed collect\"\n",
        )
        .unwrap();
        assert_eq!(
            cfg.l1_exempt.get("crates/bench/src/bin/x.rs").unwrap(),
            "measures real time"
        );
        assert_eq!(cfg.l4_allow["crates/sched/src/engine.rs"], 3);
        assert_eq!(
            cfg.l8_parallel["crates/campaign/src/sweep.rs"],
            "ordered indexed collect"
        );
        assert!(Config::parse("[bogus]\n").is_err());
        // An l8_parallel entry without a reason is a config error, not a
        // silent empty string.
        assert!(Config::parse("[l8_parallel]\n\"crates/x/src/lib.rs\" = \"\"\n").is_err());
    }

    #[test]
    fn allow_parsing_distinguishes_bare_and_reasoned() {
        assert_eq!(allow_of("let x = 1;", "L6"), Allow::None);
        assert_eq!(allow_of("m.lock(); // lint: allow(L6)", "L6"), Allow::Bare);
        assert_eq!(
            allow_of("m.lock(); // lint: allow(L6: leaf lock, no ordering)", "L6"),
            Allow::Reasoned
        );
        // Empty reason is bare; a different rule's allow does not match.
        assert_eq!(allow_of("x; // lint: allow(L6:)", "L6"), Allow::Bare);
        assert_eq!(allow_of("x; // lint: allow(L6: why)", "L8"), Allow::None);
        // The legacy L1-L5 style keeps working through has_allow.
        assert!(has_allow("x; // lint: allow(L3) key access only", "L3"));
    }

    #[test]
    fn token_at_and_integer_turbofish() {
        assert!(token_at("v.par_iter().sum()", 2, "par_iter"));
        assert!(!token_at("v.par_iter_mut()", 2, "par_iter"));
        assert!(token_at("x.sum::<u64>()", 1, ".sum"));
        assert!(!token_at("x.summary()", 1, ".sum"));
        assert!(integer_turbofish("x.sum::<u64>()", 5));
        assert!(integer_turbofish("x.sum ::<usize>()", 5));
        assert!(!integer_turbofish("x.sum::<f64>()", 5));
        assert!(!integer_turbofish("x.sum()", 5));
    }

    #[test]
    fn github_annotation_escaping() {
        let v = Violation {
            rule: "L6",
            file: "crates/a,b/src/lib.rs".to_string(),
            line: 3,
            message: "50% broken\nsecond line".to_string(),
        };
        assert_eq!(
            v.to_github(),
            "::error file=crates/a%2Cb/src/lib.rs,line=3,title=mummi-lint L6::50%25 broken%0Asecond line"
        );
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/sched/src/engine.rs"), "sched");
        assert_eq!(crate_of("src/lib.rs"), "mummi");
        assert_eq!(crate_of("tests/property_tests.rs"), "mummi");
    }

    #[test]
    fn json_escaping() {
        let v = Violation {
            rule: "L1",
            file: "a\"b.rs".to_string(),
            line: 7,
            message: "line\nbreak".to_string(),
        };
        assert_eq!(
            v.to_json(),
            "{\"rule\":\"L1\",\"file\":\"a\\\"b.rs\",\"line\":7,\"message\":\"line\\nbreak\"}"
        );
    }
}
