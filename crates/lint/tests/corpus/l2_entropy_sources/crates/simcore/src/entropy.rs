//! Fixture: every broadened L2 entropy source plus the inline escape.

pub fn bad_os_rng() {
    let mut r = OsRng;
    let _ = r;
}

pub fn bad_from_entropy() {
    let _rng = StdRng::from_entropy();
}

pub fn bad_getrandom(buf: &mut [u8]) {
    getrandom(buf).ok();
}

pub fn allowed_tiebreak() {
    let _r = thread_rng(); // lint: allow(L2) deliberate fixture escape
}
