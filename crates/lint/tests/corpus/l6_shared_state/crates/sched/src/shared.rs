//! Fixture: every L6 trigger class, the reasoned escape, the bare-allow
//! violation, the Relaxed no-escape rule, and the test-mod exemption.

use std::cell::RefCell;
use std::sync::Mutex;

static mut COUNTER: u64 = 0;

pub fn bump() {
    unsafe { COUNTER += 1 }
}

pub struct Cells {
    c: Cell<u64>,
}

pub struct Counters {
    n: AtomicU32,
}

pub struct Locked {
    m: RwLock<u64>,
}

pub struct Reasoned {
    m: Mutex<u64>, // lint: allow(L6: fixture escape carrying a written reason)
}

pub struct BareAllowed {
    m: Mutex<u64>, // lint: allow(L6)
}

pub fn relaxed_has_no_escape(x: &AtomicShim) -> u32 {
    x.load(Ordering::Relaxed) // lint: allow(L6: even a reasoned allow cannot save Relaxed)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn stress_tests_may_share_state() {
        let _m = Mutex::new(0u64);
    }
}
