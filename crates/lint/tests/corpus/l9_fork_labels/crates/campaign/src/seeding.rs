//! Fixture: L9 fork-label discipline — a computed label, a cross-file
//! duplicate, the fork_indexed idiom, and the reasoned escape.

pub fn run_streams(seeds: &SeedStream, i: u64) {
    let _dup = seeds.fork("jobs");
    let _computed = seeds.fork(&format!("run-{i}"));
    let _indexed = seeds.fork_indexed("worker", i);
    let _unique = seeds.fork("failures");
    let _escaped = seeds.fork(&label_of(i)); // lint: allow(L9: fixture escape for a computed label)
}
