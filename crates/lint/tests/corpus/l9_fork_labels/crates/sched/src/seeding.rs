//! Fixture, second crate: the duplicate "jobs" label lives here, so the
//! uniqueness check must correlate call sites across files.

pub fn scheduler_stream(seeds: &SeedStream) {
    let _dup = seeds.fork("jobs");
}
