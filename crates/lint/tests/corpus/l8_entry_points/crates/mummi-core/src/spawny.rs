//! Fixture: parallelism entry points outside the allowlist (L8), the
//! reasoned escape, the bare-allow violation, and the stale-entry check.

pub fn launch_thread() {
    std::thread::spawn(|| {});
}

pub fn launch_rayon_join() {
    rayon::join(|| {}, || {});
}

pub fn launch_rayon_spawn() {
    rayon::spawn(|| {});
}

pub fn allowed_sort(xs: &mut [u64]) {
    xs.par_sort_unstable(); // lint: allow(L8: in-place sort of a locally owned slice; result independent of schedule)
}

pub fn bare_allowed_sort(xs: &mut [u64]) {
    xs.par_sort(); // lint: allow(L8)
}
