//! Fixture: parallel float reductions (L7) — violations, the ordered
//! indexed-collect idiom, the integer-turbofish exemption, and escapes.

pub fn bad_same_line(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn bad_multi_line(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x.sqrt())
        .sum()
}

pub fn bad_closure_semicolons(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| {
            let y = x + 1.0;
            y * y
        })
        .sum()
}

pub fn good_ordered_collect(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().sum()
}

pub fn good_integer_turbofish(xs: &[u64]) -> u64 {
    xs.par_iter().map(|x| x + 1).sum::<u64>()
}

pub fn allowed_reduction(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum() // lint: allow(L7: fixture escape; tolerance-tested fold)
}

pub fn bare_allowed_reduction(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum() // lint: allow(L7)
}
