//! Vendored stand-in: full of would-be violations that must never be
//! reported — crates/vendor/ sits outside the scan entirely.

pub fn now() -> Instant {
    Instant::now()
}

pub fn rng() -> ThreadRng {
    thread_rng()
}

pub fn state() -> Mutex<HashMap<String, u64>> {
    Mutex::new(HashMap::new())
}
