//! A directory merely *named* vendor outside crates/vendor/ is scanned
//! like everything else — real code cannot hide behind the name.

pub fn leaky_clock() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
