//! Fixture-corpus tests: every subdirectory of `tests/corpus/` is a
//! scratch workspace root seeded with violations (and with escapes that
//! must NOT fire). An `EXPECT` file beside each fixture lists the exact
//! `RULE file line` triples the scanner must produce — no more, no less.
//!
//! The corpus directory is excluded from the real workspace scan (see
//! `collect_rs_files`), so these files never show up in `cargo run -p
//! lint` output; they are scanner test *data*, not workspace code, and
//! they are never compiled.

use std::path::Path;

use lint::lint_workspace;

/// Parses an `EXPECT` file: one `RULE path line` triple per line;
/// `#` comments and blank lines are ignored.
fn parse_expect(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(
            fields.len(),
            3,
            "EXPECT line {} must be `RULE path line`, got {line:?}",
            i + 1
        );
        fields[2]
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("EXPECT line {}: bad line number {:?}", i + 1, fields[2]));
        out.push(format!("{} {} {}", fields[0], fields[1], fields[2]));
    }
    out.sort();
    out
}

/// Runs one fixture and diffs its violations against `EXPECT`.
fn run_case(case_dir: &Path) {
    let case = case_dir.file_name().unwrap().to_string_lossy().to_string();
    let expect_path = case_dir.join("EXPECT");
    let expect_text = std::fs::read_to_string(&expect_path)
        .unwrap_or_else(|e| panic!("corpus case {case}: reading EXPECT: {e}"));
    let expected = parse_expect(&expect_text);

    let violations =
        lint_workspace(case_dir).unwrap_or_else(|e| panic!("corpus case {case}: lint failed: {e}"));
    let mut got: Vec<String> = violations
        .iter()
        .map(|v| format!("{} {} {}", v.rule, v.file, v.line))
        .collect();
    got.sort();

    if got != expected {
        let missing: Vec<&String> = expected.iter().filter(|e| !got.contains(e)).collect();
        let surprise: Vec<&String> = got.iter().filter(|g| !expected.contains(g)).collect();
        let detail: Vec<String> = violations.iter().map(|v| format!("  {v}")).collect();
        panic!(
            "corpus case {case} mismatch\n  missing (in EXPECT, not reported): {missing:?}\n  \
             unexpected (reported, not in EXPECT): {surprise:?}\nfull report:\n{}",
            detail.join("\n")
        );
    }
}

/// Every fixture directory runs; a new fixture is picked up with no
/// harness change. The corpus must be non-empty — an empty glob would
/// silently pass.
#[test]
fn corpus_fixtures_match_expectations() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases: Vec<_> = std::fs::read_dir(&corpus)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 6,
        "corpus has {} cases; the L2/L6/L7/L8/L9/vendor fixtures are required",
        cases.len()
    );
    for case in cases {
        run_case(&case);
    }
}
