//! Tier-1 gate: the workspace must satisfy the determinism contract, and
//! the linter must actually catch a seeded violation of every rule.

use std::path::{Path, PathBuf};

use lint::{finish_scan, lint_file, lint_workspace, Config, ScanState, Violation};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_satisfies_the_determinism_contract() {
    let violations = lint_workspace(&workspace_root()).expect("lint pass runs");
    assert!(
        violations.is_empty(),
        "determinism contract violated:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Runs the per-file pass on scratch source attributed to `rel`.
fn scratch(rel: &str, source: &str, config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut state = ScanState::default();
    lint_file(rel, source, config, &mut violations, &mut state);
    violations
}

/// Runs the full pass — per-file plus the cross-file finish — over a set
/// of scratch files, as `lint_workspace` would.
fn scratch_many(files: &[(&str, &str)], config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut state = ScanState::default();
    for (rel, source) in files {
        lint_file(rel, source, config, &mut violations, &mut state);
    }
    finish_scan(config, &state, &mut violations);
    violations
}

fn assert_fires(violations: &[Violation], rule: &str, file: &str, line: usize) {
    assert!(
        violations
            .iter()
            .any(|v| v.rule == rule && v.file == file && v.line == line),
        "expected {rule} at {file}:{line}, got: {violations:?}"
    );
}

#[test]
fn l1_catches_wall_clock_in_sim_path() {
    let src = "fn tick() {\n    let t0 = std::time::Instant::now();\n}\n";
    let v = scratch("crates/simcore/src/clock.rs", src, &Config::default());
    assert_fires(&v, "L1", "crates/simcore/src/clock.rs", 2);

    // The same line in an exempt file is clean.
    let mut cfg = Config::default();
    cfg.l1_exempt.insert(
        "crates/bench/src/bin/probe.rs".into(),
        "measures real time".into(),
    );
    assert!(scratch("crates/bench/src/bin/probe.rs", src, &cfg).is_empty());
}

#[test]
fn l2_catches_unseeded_randomness_even_in_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x: u64 = rand::random(); }\n}\n";
    let v = scratch("crates/cg/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L2", "crates/cg/src/engine.rs", 3);

    let src2 = "fn f() { let mut rng = rand::thread_rng(); }\n";
    let v2 = scratch("tests/property_tests.rs", src2, &Config::default());
    assert_fires(&v2, "L2", "tests/property_tests.rs", 1);
}

#[test]
fn l3_catches_unordered_containers_in_coordination_crates() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    for _ in m.iter() {}\n}\n";
    let v = scratch("crates/sched/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L3", "crates/sched/src/engine.rs", 1);
    assert_fires(&v, "L3", "crates/sched/src/engine.rs", 2);

    // Outside the coordination crates the type is fine.
    assert!(scratch("crates/cg/src/engine.rs", src, &Config::default()).is_empty());
    // Inline allow silences a justified key-access-only use.
    let allowed = "use std::collections::HashMap; // lint: allow(L3) key access only\n";
    assert!(scratch("crates/sched/src/engine.rs", allowed, &Config::default()).is_empty());
    // Test modules are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
    assert!(scratch("crates/sched/src/engine.rs", test_src, &Config::default()).is_empty());
}

#[test]
fn l4_catches_unwrap_on_the_coordination_path() {
    let src = "fn f() {\n    let x = std::fs::read(\"p\").unwrap();\n    let _ = x;\n}\n";
    let v = scratch("crates/datastore/src/fs.rs", src, &Config::default());
    assert_fires(&v, "L4", "crates/datastore/src/fs.rs", 2);

    // A budget in lint.toml grandfathers exactly that many calls.
    let mut cfg = Config::default();
    cfg.l4_allow.insert("crates/datastore/src/fs.rs".into(), 1);
    assert!(scratch("crates/datastore/src/fs.rs", src, &cfg).is_empty());
    // But one more call than the budget still fires.
    let src2 = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
    let v2 = scratch("crates/datastore/src/fs.rs", src2, &cfg);
    assert_fires(&v2, "L4", "crates/datastore/src/fs.rs", 1);
}

#[test]
fn l4_budgets_may_only_ratchet_down() {
    // A stale budget (larger than the real count) fails the whole pass:
    // build a scratch workspace with a clean file but a leftover budget.
    let dir = std::env::temp_dir().join(format!("mummi-lint-ratchet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/sched/src")).unwrap();
    std::fs::write(dir.join("crates/sched/src/lib.rs"), "pub fn ok() {}\n").unwrap();
    std::fs::write(
        dir.join("lint.toml"),
        "[l4_allow]\n\"crates/sched/src/lib.rs\" = 5\n",
    )
    .unwrap();
    let v = lint_workspace(&dir).expect("pass runs");
    assert!(
        v.iter().any(|v| v.rule == "L4" && v.file == "lint.toml"),
        "stale budget must be flagged: {v:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn l5_catches_raw_state_writes_outside_the_state_machine() {
    let src = "fn f(rec: &mut JobRecord) {\n    rec.state = JobState::Queued;\n}\n";
    let v = scratch("crates/sched/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L5", "crates/sched/src/engine.rs", 2);

    // The state-machine module itself may write states.
    assert!(scratch("crates/sched/src/job.rs", src, &Config::default()).is_empty());
    // Comparisons and advance_to calls are not writes.
    let clean = "fn f() {\n    if rec.state == JobState::Queued { rec.state.advance_to(JobState::Running); }\n}\n";
    assert!(scratch("crates/sched/src/engine.rs", clean, &Config::default()).is_empty());
}

#[test]
fn l6_catches_shared_mutable_state_in_coordination_crates() {
    let src = "use std::sync::Mutex;\nfn f() { unsafe { bad() } }\n";
    let v = scratch("crates/mummi-core/src/wm.rs", src, &Config::default());
    assert_fires(&v, "L6", "crates/mummi-core/src/wm.rs", 1);
    assert_fires(&v, "L6", "crates/mummi-core/src/wm.rs", 2);

    // Outside the coordination crates the primitives are legal; inside,
    // only a *reasoned* allow silences them — a bare allow is itself a
    // violation.
    assert!(scratch("crates/ml/src/train.rs", src, &Config::default()).is_empty());
    let reasoned =
        "use std::sync::Mutex; // lint: allow(L6: leaf lock shared with the WM closure)\n";
    assert!(scratch("crates/mummi-core/src/wm.rs", reasoned, &Config::default()).is_empty());
    let bare = "use std::sync::Mutex; // lint: allow(L6)\n";
    let vb = scratch("crates/mummi-core/src/wm.rs", bare, &Config::default());
    assert_fires(&vb, "L6", "crates/mummi-core/src/wm.rs", 1);
}

#[test]
fn l6_relaxed_ordering_has_no_escape_anywhere() {
    // Tests, non-coordination crates, and reasoned allows: none of them
    // make Ordering::Relaxed legal.
    let src = "#[cfg(test)]\nmod t {\n    fn f() { x.load(Ordering::Relaxed); } // lint: allow(L6: please)\n}\n";
    let v = scratch("crates/ml/src/train.rs", src, &Config::default());
    assert_fires(&v, "L6", "crates/ml/src/train.rs", 3);
}

#[test]
fn l7_catches_parallel_float_reductions() {
    // Same statement, lines apart: par_iter on line 2, the float fold on
    // line 4 — the closure's inner `;` must not break the window.
    let src = "fn f(v: &[f64]) -> f64 {\n    v.par_iter()\n        .map(|x| { let y = x + 1.0; y })\n        .fold(0.0, |a, b| a + b)\n}\n";
    let mut cfg = Config::default();
    cfg.l8_parallel
        .insert("crates/campaign/src/x.rs".into(), "fixture".into());
    let v = scratch("crates/campaign/src/x.rs", src, &cfg);
    assert_fires(&v, "L7", "crates/campaign/src/x.rs", 4);

    // The prescribed idiom — ordered collect, then a serial reduction in
    // the next statement — is clean, as is an integer turbofish sum.
    let ok = "fn f(v: &[f64]) -> f64 {\n    let c: Vec<f64> = v.par_iter().copied().collect();\n    c.iter().sum()\n}\nfn g(v: &[u64]) -> u64 { v.par_iter().sum::<u64>() }\n";
    assert!(scratch("crates/campaign/src/x.rs", ok, &cfg).is_empty());
}

#[test]
fn l8_entry_points_require_the_allowlist() {
    let src = "fn f(v: &[u64]) -> Vec<u64> { v.par_iter().map(|x| x + 1).collect() }\n";
    let v = scratch("crates/sched/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L8", "crates/sched/src/engine.rs", 1);

    // Listed in [l8_parallel]: clean. In test code: exempt.
    let mut cfg = Config::default();
    cfg.l8_parallel
        .insert("crates/sched/src/engine.rs".into(), "fixture".into());
    assert!(scratch("crates/sched/src/engine.rs", src, &cfg).is_empty());
    let test_src = "#[cfg(test)]\nmod t {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
    assert!(scratch("crates/sched/src/engine.rs", test_src, &Config::default()).is_empty());

    // A stale allowlist entry (no parallel entry point left) is flagged
    // by the cross-file finish, pinned to lint.toml.
    let v = scratch_many(&[("crates/sched/src/engine.rs", "fn ok() {}\n")], &cfg);
    assert_fires(&v, "L8", "lint.toml", 1);
}

#[test]
fn l9_fork_labels_must_be_literal_and_globally_unique() {
    // The same label in two files — the cross-file case — fires at both
    // sites; a computed label fires where it stands.
    let a = "fn a(s: &SeedStream) { let _ = s.fork(\"wm\"); }\n";
    let b = "fn b(s: &SeedStream) { let _ = s.fork(\"wm\"); }\nfn c(s: &SeedStream, n: &str) { let _ = s.fork(n); }\n";
    let v = scratch_many(
        &[
            ("crates/campaign/src/a.rs", a),
            ("crates/chaos/src/b.rs", b),
        ],
        &Config::default(),
    );
    assert_fires(&v, "L9", "crates/campaign/src/a.rs", 1);
    assert_fires(&v, "L9", "crates/chaos/src/b.rs", 1);
    assert_fires(&v, "L9", "crates/chaos/src/b.rs", 2);

    // Distinct literals, fork_indexed, and test code are all clean.
    let ok = "fn a(s: &SeedStream) { let _ = s.fork(\"wm\"); }\nfn b(s: &SeedStream, i: u64) { let _ = s.fork_indexed(\"run\", i); }\n#[cfg(test)]\nmod t {\n    fn t(s: &SeedStream) { s.fork(\"wm\"); }\n}\n";
    assert!(scratch_many(&[("crates/campaign/src/a.rs", ok)], &Config::default()).is_empty());
}

#[test]
fn diagnostics_carry_file_and_line() {
    let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
    let v = scratch("crates/taridx/src/archive.rs", src, &Config::default());
    assert_eq!(v.len(), 1);
    let rendered = v[0].to_string();
    assert!(
        rendered.contains("crates/taridx/src/archive.rs:1"),
        "{rendered}"
    );
    let json = lint::to_json(&v);
    assert!(json.contains("\"rule\":\"L1\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
}
