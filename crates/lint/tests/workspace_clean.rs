//! Tier-1 gate: the workspace must satisfy the determinism contract, and
//! the linter must actually catch a seeded violation of every rule.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lint::{lint_file, lint_workspace, Config, Violation};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_satisfies_the_determinism_contract() {
    let violations = lint_workspace(&workspace_root()).expect("lint pass runs");
    assert!(
        violations.is_empty(),
        "determinism contract violated:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Runs the per-file pass on scratch source attributed to `rel`.
fn scratch(rel: &str, source: &str, config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut counts = BTreeMap::new();
    lint_file(rel, source, config, &mut violations, &mut counts);
    violations
}

fn assert_fires(violations: &[Violation], rule: &str, file: &str, line: usize) {
    assert!(
        violations
            .iter()
            .any(|v| v.rule == rule && v.file == file && v.line == line),
        "expected {rule} at {file}:{line}, got: {violations:?}"
    );
}

#[test]
fn l1_catches_wall_clock_in_sim_path() {
    let src = "fn tick() {\n    let t0 = std::time::Instant::now();\n}\n";
    let v = scratch("crates/simcore/src/clock.rs", src, &Config::default());
    assert_fires(&v, "L1", "crates/simcore/src/clock.rs", 2);

    // The same line in an exempt file is clean.
    let mut cfg = Config::default();
    cfg.l1_exempt.insert(
        "crates/bench/src/bin/probe.rs".into(),
        "measures real time".into(),
    );
    assert!(scratch("crates/bench/src/bin/probe.rs", src, &cfg).is_empty());
}

#[test]
fn l2_catches_unseeded_randomness_even_in_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x: u64 = rand::random(); }\n}\n";
    let v = scratch("crates/cg/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L2", "crates/cg/src/engine.rs", 3);

    let src2 = "fn f() { let mut rng = rand::thread_rng(); }\n";
    let v2 = scratch("tests/property_tests.rs", src2, &Config::default());
    assert_fires(&v2, "L2", "tests/property_tests.rs", 1);
}

#[test]
fn l3_catches_unordered_containers_in_coordination_crates() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    for _ in m.iter() {}\n}\n";
    let v = scratch("crates/sched/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L3", "crates/sched/src/engine.rs", 1);
    assert_fires(&v, "L3", "crates/sched/src/engine.rs", 2);

    // Outside the coordination crates the type is fine.
    assert!(scratch("crates/cg/src/engine.rs", src, &Config::default()).is_empty());
    // Inline allow silences a justified key-access-only use.
    let allowed = "use std::collections::HashMap; // lint: allow(L3) key access only\n";
    assert!(scratch("crates/sched/src/engine.rs", allowed, &Config::default()).is_empty());
    // Test modules are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
    assert!(scratch("crates/sched/src/engine.rs", test_src, &Config::default()).is_empty());
}

#[test]
fn l4_catches_unwrap_on_the_coordination_path() {
    let src = "fn f() {\n    let x = std::fs::read(\"p\").unwrap();\n    let _ = x;\n}\n";
    let v = scratch("crates/datastore/src/fs.rs", src, &Config::default());
    assert_fires(&v, "L4", "crates/datastore/src/fs.rs", 2);

    // A budget in lint.toml grandfathers exactly that many calls.
    let mut cfg = Config::default();
    cfg.l4_allow.insert("crates/datastore/src/fs.rs".into(), 1);
    assert!(scratch("crates/datastore/src/fs.rs", src, &cfg).is_empty());
    // But one more call than the budget still fires.
    let src2 = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
    let v2 = scratch("crates/datastore/src/fs.rs", src2, &cfg);
    assert_fires(&v2, "L4", "crates/datastore/src/fs.rs", 1);
}

#[test]
fn l4_budgets_may_only_ratchet_down() {
    // A stale budget (larger than the real count) fails the whole pass:
    // build a scratch workspace with a clean file but a leftover budget.
    let dir = std::env::temp_dir().join(format!("mummi-lint-ratchet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/sched/src")).unwrap();
    std::fs::write(dir.join("crates/sched/src/lib.rs"), "pub fn ok() {}\n").unwrap();
    std::fs::write(
        dir.join("lint.toml"),
        "[l4_allow]\n\"crates/sched/src/lib.rs\" = 5\n",
    )
    .unwrap();
    let v = lint_workspace(&dir).expect("pass runs");
    assert!(
        v.iter().any(|v| v.rule == "L4" && v.file == "lint.toml"),
        "stale budget must be flagged: {v:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn l5_catches_raw_state_writes_outside_the_state_machine() {
    let src = "fn f(rec: &mut JobRecord) {\n    rec.state = JobState::Queued;\n}\n";
    let v = scratch("crates/sched/src/engine.rs", src, &Config::default());
    assert_fires(&v, "L5", "crates/sched/src/engine.rs", 2);

    // The state-machine module itself may write states.
    assert!(scratch("crates/sched/src/job.rs", src, &Config::default()).is_empty());
    // Comparisons and advance_to calls are not writes.
    let clean = "fn f() {\n    if rec.state == JobState::Queued { rec.state.advance_to(JobState::Running); }\n}\n";
    assert!(scratch("crates/sched/src/engine.rs", clean, &Config::default()).is_empty());
}

#[test]
fn diagnostics_carry_file_and_line() {
    let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
    let v = scratch("crates/taridx/src/archive.rs", src, &Config::default());
    assert_eq!(v.len(), 1);
    let rendered = v[0].to_string();
    assert!(
        rendered.contains("crates/taridx/src/archive.rs:1"),
        "{rendered}"
    );
    let json = lint::to_json(&v);
    assert!(json.contains("\"rule\":\"L1\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
}
