//! Node and machine topology descriptions.

/// The hardware shape of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// CPU sockets per node.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// GPUs per node, distributed evenly across sockets.
    pub gpus: u32,
}

impl NodeSpec {
    /// Summit: two IBM POWER9 CPUs with 22 cores each, six V100 GPUs
    /// (three per socket over NVLink/PCIe).
    pub const fn summit() -> NodeSpec {
        NodeSpec {
            sockets: 2,
            cores_per_socket: 22,
            gpus: 6,
        }
    }

    /// Lassen/Sierra-class node: two POWER9 sockets, four V100 GPUs.
    pub const fn lassen() -> NodeSpec {
        NodeSpec {
            sockets: 2,
            cores_per_socket: 22,
            gpus: 4,
        }
    }

    /// Total cores on the node.
    pub const fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// GPUs attached to a given socket (even split; remainders go to the
    /// lower sockets).
    pub fn gpus_on_socket(&self, socket: u32) -> Vec<u32> {
        (0..self.gpus)
            .filter(|g| g * self.sockets / self.gpus == socket)
            .collect()
    }

    /// The socket a GPU hangs off.
    pub fn socket_of_gpu(&self, gpu: u32) -> u32 {
        debug_assert!(gpu < self.gpus);
        gpu * self.sockets / self.gpus
    }

    /// The core IDs on a socket, lowest-first. By convention, lower core
    /// IDs within a socket are "closer to the PCIe bus" — the cores the
    /// analysis tasks want.
    pub fn cores_on_socket(&self, socket: u32) -> std::ops::Range<u32> {
        let lo = socket * self.cores_per_socket;
        lo..lo + self.cores_per_socket
    }

    /// The socket a core belongs to.
    pub fn socket_of_core(&self, core: u32) -> u32 {
        core / self.cores_per_socket
    }
}

/// A whole machine: `nodes` identical [`NodeSpec`] nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// Human-readable machine name.
    pub name: String,
    /// Node count.
    pub nodes: u32,
    /// Per-node hardware shape.
    pub node: NodeSpec,
}

impl MachineSpec {
    /// Full Summit: 4608 nodes.
    pub fn summit() -> MachineSpec {
        MachineSpec {
            name: "summit".into(),
            nodes: 4608,
            node: NodeSpec::summit(),
        }
    }

    /// A Summit-shaped allocation of `nodes` nodes (the paper ran 100-,
    /// 500-, 1000-, and 4000-node allocations).
    pub fn summit_allocation(nodes: u32) -> MachineSpec {
        MachineSpec {
            name: format!("summit-{nodes}"),
            nodes,
            node: NodeSpec::summit(),
        }
    }

    /// Lassen: 795 nodes (the development machine).
    pub fn lassen() -> MachineSpec {
        MachineSpec {
            name: "lassen".into(),
            nodes: 795,
            node: NodeSpec::lassen(),
        }
    }

    /// A custom machine.
    pub fn custom(name: &str, nodes: u32, node: NodeSpec) -> MachineSpec {
        MachineSpec {
            name: name.into(),
            nodes,
            node,
        }
    }

    /// Total GPUs in the machine.
    pub fn total_gpus(&self) -> u64 {
        self.nodes as u64 * self.node.gpus as u64
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.node.cores() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_shape() {
        let n = NodeSpec::summit();
        assert_eq!(n.cores(), 44);
        assert_eq!(n.gpus, 6);
        assert_eq!(n.gpus_on_socket(0), vec![0, 1, 2]);
        assert_eq!(n.gpus_on_socket(1), vec![3, 4, 5]);
        assert_eq!(n.socket_of_gpu(2), 0);
        assert_eq!(n.socket_of_gpu(3), 1);
        assert_eq!(n.cores_on_socket(1), 22..44);
        assert_eq!(n.socket_of_core(21), 0);
        assert_eq!(n.socket_of_core(22), 1);
    }

    #[test]
    fn lassen_shape() {
        let n = NodeSpec::lassen();
        assert_eq!(n.gpus_on_socket(0), vec![0, 1]);
        assert_eq!(n.gpus_on_socket(1), vec![2, 3]);
    }

    #[test]
    fn machine_totals() {
        let m = MachineSpec::summit();
        assert_eq!(m.nodes, 4608);
        assert_eq!(m.total_gpus(), 27_648);
        assert_eq!(m.total_cores(), 202_752);
        let a = MachineSpec::summit_allocation(1000);
        assert_eq!(a.total_gpus(), 6000);
    }

    #[test]
    fn uneven_gpu_split_goes_to_lower_sockets() {
        let n = NodeSpec {
            sockets: 2,
            cores_per_socket: 4,
            gpus: 3,
        };
        let s0 = n.gpus_on_socket(0);
        let s1 = n.gpus_on_socket(1);
        assert_eq!(s0.len() + s1.len(), 3);
        assert!(s0.len() >= s1.len());
    }
}
