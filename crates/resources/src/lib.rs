//! Machine topology and the hierarchical resource graph.
//!
//! MuMMI's scheduling innovations (§4.3) are about *placement*: GPUs are
//! assigned "to simulations individually rather than per-node", simulation
//! cores must "share cache" with their GPU, analysis tasks sit "on a small
//! number of CPU cores that are closest to the PCIe bus", and setup jobs
//! take 24 cores "within a node, reserving all GPUs for simulations". The
//! 4000-node scaling run then exposed that Flux's matcher "traverses the
//! resource graph in its entirety for each job", fixed with a greedy
//! first-match policy (§5.2).
//!
//! This crate models exactly that substrate:
//!
//! - [`NodeSpec`]/[`MachineSpec`] — Summit (2×22 cores, 6 GPUs per node,
//!   4608 nodes) and Lassen topologies, or custom shapes;
//! - [`ResourceGraph`] — per-node core/GPU bitmaps with drain support;
//! - [`JobShape`]/[`Affinity`] — multi-node requests with the paper's
//!   placement constraints;
//! - [`MatchPolicy`] — `LowIdExhaustive` (score every feasible node, pick
//!   lowest IDs — the pre-fix Flux behavior) vs `FirstMatch` (greedy stop
//!   at the first feasible set — the fix), with visited-node
//!   instrumentation so the 670× ablation is measurable.

mod graph;
mod shape;
mod topology;

pub use graph::{Alloc, MatchPolicy, NodeAlloc, ResourceGraph};
pub use shape::{Affinity, JobShape};
pub use topology::{MachineSpec, NodeSpec};

/// Identifies a node within a machine.
pub type NodeId = u32;
