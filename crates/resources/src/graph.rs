//! The resource graph: allocation state and matching policies.

use std::collections::HashMap;

use crate::shape::{Affinity, JobShape};
use crate::topology::MachineSpec;
use crate::NodeId;

/// How the matcher selects among feasible resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchPolicy {
    /// Score *every* node for feasibility, then take the lowest-ID feasible
    /// set — the "low resource ID first" policy MuMMI configured in Flux,
    /// whose full-graph traversal became the 4000-node bottleneck.
    LowIdExhaustive,
    /// Stop at the first feasible node set, greedily — the fix the paper
    /// reports as a 670× matcher improvement.
    FirstMatch,
}

/// Resources granted to one job on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAlloc {
    /// Which node.
    pub node: NodeId,
    /// Bitmask of allocated cores (bit i = core i).
    pub core_mask: u64,
    /// Bitmask of allocated GPUs (bit i = GPU i).
    pub gpu_mask: u8,
}

/// A complete allocation: one [`NodeAlloc`] per requested node-slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alloc {
    /// Per-node grants.
    pub slices: Vec<NodeAlloc>,
}

impl Alloc {
    /// Total GPUs held.
    pub fn gpus(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| s.gpu_mask.count_ones() as u64)
            .sum()
    }

    /// Total cores held.
    pub fn cores(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| s.core_mask.count_ones() as u64)
            .sum()
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    /// Bitmask of *free* cores.
    free_cores: u64,
    /// Bitmask of *free* GPUs.
    free_gpus: u8,
    /// Drained nodes accept no new work (existing jobs keep running).
    drained: bool,
}

/// Segment tree over node IDs holding per-segment maxima of free-GPU and
/// free-core *counts*. `first_candidate` descends left-first to the lowest
/// node ID at or above a cursor whose counts satisfy a shape's demand —
/// O(log n) against the linear matcher's O(n) rescan. Counts are necessary
/// but not sufficient (affinity can still fail on a fragmented node), so
/// callers re-verify candidates with the full per-node matcher. Drained
/// nodes are recorded as (0, 0) so the descent skips them wholesale.
#[derive(Debug, Clone)]
struct FreeIndex {
    /// Number of leaves (next power of two ≥ node count; padding is zero).
    leaves: usize,
    /// Max free-GPU count per segment; entry 1 is the root, leaf `i` lives
    /// at `leaves + i`.
    gpus: Vec<u8>,
    /// Max free-core count per segment (node cores ≤ 64 fits in u8).
    cores: Vec<u8>,
}

impl FreeIndex {
    fn build(per_node: impl ExactSizeIterator<Item = (u8, u8)>) -> FreeIndex {
        let leaves = per_node.len().next_power_of_two().max(1);
        let mut gpus = vec![0u8; 2 * leaves];
        let mut cores = vec![0u8; 2 * leaves];
        for (i, (g, c)) in per_node.enumerate() {
            gpus[leaves + i] = g;
            cores[leaves + i] = c;
        }
        for i in (1..leaves).rev() {
            gpus[i] = gpus[2 * i].max(gpus[2 * i + 1]);
            cores[i] = cores[2 * i].max(cores[2 * i + 1]);
        }
        FreeIndex {
            leaves,
            gpus,
            cores,
        }
    }

    /// Point-updates leaf `id` and recomputes aggregates up to the root.
    fn set(&mut self, id: usize, gpus: u8, cores: u8) {
        let mut i = self.leaves + id;
        self.gpus[i] = gpus;
        self.cores[i] = cores;
        while i > 1 {
            i /= 2;
            self.gpus[i] = self.gpus[2 * i].max(self.gpus[2 * i + 1]);
            self.cores[i] = self.cores[2 * i].max(self.cores[2 * i + 1]);
        }
    }

    /// Lowest leaf ID ≥ `from` with at least `gpus` free GPUs *and*
    /// `cores` free cores, by count. `None` if no leaf qualifies.
    fn first_candidate(&self, from: usize, gpus: u8, cores: u8) -> Option<usize> {
        if from >= self.leaves {
            return None;
        }
        self.descend(1, 0, self.leaves, from, gpus, cores)
    }

    fn descend(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        from: usize,
        g: u8,
        c: u8,
    ) -> Option<usize> {
        if hi <= from || self.gpus[node] < g || self.cores[node] < c {
            return None;
        }
        if hi - lo == 1 {
            return Some(lo);
        }
        let mid = lo.midpoint(hi);
        self.descend(2 * node, lo, mid, from, g, c)
            .or_else(|| self.descend(2 * node + 1, mid, hi, from, g, c))
    }
}

/// Allocation state for a whole machine plus matcher instrumentation.
#[derive(Debug, Clone)]
pub struct ResourceGraph {
    spec: MachineSpec,
    nodes: Vec<NodeState>,
    used_cores: u64,
    used_gpus: u64,
    visited_last: u64,
    visited_total: u64,
    /// Per-shape scan cursor for [`MatchPolicy::FirstMatch`]: every node
    /// below the cursor is known infeasible for that shape until a release
    /// touches it. This is the pruning that makes greedy first-match fast
    /// even on a nearly-full 4000-node graph.
    scan_hints: HashMap<JobShape, usize>,
    /// Count index over free resources, kept in sync with `nodes` on every
    /// commit/release/drain/undrain.
    index: FreeIndex,
    /// When set, `try_alloc` uses the retained O(n) linear matcher instead
    /// of the segment-tree descent. The linear matcher is the differential
    /// oracle for the index (`tests/alloc_props.rs` in `sched`) and the
    /// pre-index engine for benchmark comparisons; both paths pick the same
    /// nodes and report the same virtual visit counts.
    linear_scan: bool,
}

impl ResourceGraph {
    /// Builds an all-free graph for `spec`.
    ///
    /// # Panics
    /// Panics if a node has more than 64 cores or 8 GPUs (bitmask limits).
    pub fn new(spec: MachineSpec) -> ResourceGraph {
        assert!(spec.node.cores() <= 64, "core bitmask limit is 64");
        assert!(spec.node.gpus <= 8, "gpu bitmask limit is 8");
        let all_cores = mask_lo_u64(spec.node.cores());
        let all_gpus = mask_lo_u8(spec.node.gpus);
        let nodes = vec![
            NodeState {
                free_cores: all_cores,
                free_gpus: all_gpus,
                drained: false,
            };
            spec.nodes as usize
        ];
        let index = FreeIndex::build(nodes.iter().map(|n| {
            (
                n.free_gpus.count_ones() as u8,
                n.free_cores.count_ones() as u8,
            )
        }));
        ResourceGraph {
            nodes,
            spec,
            used_cores: 0,
            used_gpus: 0,
            visited_last: 0,
            visited_total: 0,
            scan_hints: HashMap::new(),
            index,
            linear_scan: false,
        }
    }

    /// Selects the retained O(n) linear matcher (`true`) or the indexed
    /// matcher (`false`, the default). Both produce identical allocations,
    /// visit counts, and scan-hint state; the toggle exists so benchmarks
    /// and property tests can compare the engines at the same seed.
    pub fn set_linear_scan(&mut self, on: bool) {
        self.linear_scan = on;
    }

    /// Whether the retained linear matcher is active.
    pub fn linear_scan(&self) -> bool {
        self.linear_scan
    }

    /// Per-node `(free core mask, free GPU mask)` snapshot, in node-ID
    /// order — the ground truth that claim/release round-trip tests and
    /// the index validator compare against.
    pub fn free_masks(&self) -> Vec<(u64, u8)> {
        self.nodes
            .iter()
            .map(|n| (n.free_cores, n.free_gpus))
            .collect()
    }

    /// Checks every segment-tree aggregate against the node table.
    /// Diagnostic for property tests; `Err` names the first mismatch.
    pub fn validate_index(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            let (want_g, want_c) = if n.drained {
                (0u8, 0u8)
            } else {
                (
                    n.free_gpus.count_ones() as u8,
                    n.free_cores.count_ones() as u8,
                )
            };
            let leaf = self.index.leaves + id;
            if self.index.gpus[leaf] != want_g || self.index.cores[leaf] != want_c {
                return Err(format!(
                    "leaf {id}: index ({}, {}) != node ({want_g}, {want_c})",
                    self.index.gpus[leaf], self.index.cores[leaf]
                ));
            }
        }
        for i in 1..self.index.leaves {
            let g = self.index.gpus[2 * i].max(self.index.gpus[2 * i + 1]);
            let c = self.index.cores[2 * i].max(self.index.cores[2 * i + 1]);
            if self.index.gpus[i] != g || self.index.cores[i] != c {
                return Err(format!("segment {i}: stale aggregate"));
            }
        }
        Ok(())
    }

    /// Re-derives node `id`'s leaf in the free index from its masks.
    fn reindex(&mut self, id: usize) {
        let n = &self.nodes[id];
        let (g, c) = if n.drained {
            (0, 0)
        } else {
            (
                n.free_gpus.count_ones() as u8,
                n.free_cores.count_ones() as u8,
            )
        };
        self.index.set(id, g, c);
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// (used, total) GPUs.
    pub fn gpu_usage(&self) -> (u64, u64) {
        (self.used_gpus, self.spec.total_gpus())
    }

    /// (used, total) cores.
    pub fn cpu_usage(&self) -> (u64, u64) {
        (self.used_cores, self.spec.total_cores())
    }

    /// Nodes inspected by the most recent `try_alloc` call.
    pub fn visited_last(&self) -> u64 {
        self.visited_last
    }

    /// Nodes inspected across all `try_alloc` calls (the ablation metric).
    pub fn visited_total(&self) -> u64 {
        self.visited_total
    }

    /// Resets the visited counters.
    pub fn reset_visited(&mut self) {
        self.visited_last = 0;
        self.visited_total = 0;
    }

    /// Marks a node as drained: running jobs continue, new placements skip
    /// it. This is Flux's node-failure response the paper leans on.
    pub fn drain(&mut self, node: NodeId) {
        self.nodes[node as usize].drained = true;
        self.reindex(node as usize);
    }

    /// Returns a drained node to service.
    pub fn undrain(&mut self, node: NodeId) {
        self.nodes[node as usize].drained = false;
        self.reindex(node as usize);
        for hint in self.scan_hints.values_mut() {
            *hint = (*hint).min(node as usize);
        }
    }

    /// Whether a node is drained.
    pub fn is_drained(&self, node: NodeId) -> bool {
        self.nodes[node as usize].drained
    }

    /// Attempts to allocate `shape` under `policy`. Returns `None` when the
    /// request cannot currently be satisfied (nothing is held in that case).
    ///
    /// Two interchangeable engines sit behind this call: the default
    /// segment-tree descent and the retained linear scan
    /// ([`ResourceGraph::set_linear_scan`]). Both select the lowest-ID
    /// feasible nodes and charge the *policy's* visit cost — for
    /// [`MatchPolicy::LowIdExhaustive`] that is always the full node count
    /// (the modeled Flux traversal), for [`MatchPolicy::FirstMatch`] the
    /// span actually scanned — so virtual-time traces are byte-identical
    /// whichever engine runs.
    pub fn try_alloc(&mut self, shape: &JobShape, policy: MatchPolicy) -> Option<Alloc> {
        if self.linear_scan {
            self.try_alloc_linear(shape, policy)
        } else {
            self.try_alloc_indexed(shape, policy)
        }
    }

    /// The retained pre-index matcher: a straight O(nodes) scan. Kept as
    /// the differential oracle for the segment-tree path and as the
    /// "before" engine in scale benchmarks.
    fn try_alloc_linear(&mut self, shape: &JobShape, policy: MatchPolicy) -> Option<Alloc> {
        let want = shape.nodes as usize;
        if want == 0 {
            return Some(Alloc { slices: vec![] });
        }
        let exhaustive = policy == MatchPolicy::LowIdExhaustive;
        // First-match starts at the shape's scan cursor; the exhaustive
        // low-ID policy always walks the whole graph (the modeled Flux
        // traversal cost).
        let start = if exhaustive {
            0
        } else {
            *self.scan_hints.get(shape).unwrap_or(&0)
        };
        let mut found: Vec<NodeAlloc> = Vec::with_capacity(want);
        let mut visited = 0u64;
        for id in start..self.nodes.len() {
            if !exhaustive && found.len() == want {
                break;
            }
            visited += 1;
            if found.len() < want {
                if let Some(slice) = self.match_node(id as NodeId, shape) {
                    found.push(slice);
                } else if !exhaustive && found.is_empty() {
                    // Everything up to here is infeasible for this shape;
                    // remember that until a release invalidates it.
                    self.scan_hints.insert(*shape, id + 1);
                }
            }
        }
        self.visited_last = visited;
        self.visited_total += visited;
        if found.len() < want {
            return None;
        }
        for slice in &found {
            self.commit(slice);
        }
        Some(Alloc { slices: found })
    }

    /// Indexed matcher: segment-tree descent to each successive candidate,
    /// re-verified by the full per-node matcher (counts can pass while
    /// affinity fails on a fragmented node). Selection order is identical
    /// to the linear scan — lowest feasible IDs first — and the reported
    /// visit counts and final scan-hint values reproduce the linear scan's
    /// arithmetic exactly, which is what keeps same-seed traces
    /// byte-identical across engines.
    fn try_alloc_indexed(&mut self, shape: &JobShape, policy: MatchPolicy) -> Option<Alloc> {
        let want = shape.nodes as usize;
        if want == 0 {
            return Some(Alloc { slices: vec![] });
        }
        let exhaustive = policy == MatchPolicy::LowIdExhaustive;
        let len = self.nodes.len();
        let start = if exhaustive {
            0
        } else {
            *self.scan_hints.get(shape).unwrap_or(&0)
        };
        let need_gpus = shape.gpus_per_node.min(255) as u8;
        let need_cores = shape.cores_per_node.min(255) as u8;
        let mut found: Vec<NodeAlloc> = Vec::with_capacity(want);
        let mut first_feasible: Option<usize> = None;
        let mut cursor = start;
        while found.len() < want && cursor < len {
            let Some(id) = self.index.first_candidate(cursor, need_gpus, need_cores) else {
                break;
            };
            if id >= len {
                break; // zero-padded leaves past the last real node
            }
            if let Some(slice) = self.match_node(id as NodeId, shape) {
                first_feasible.get_or_insert(id);
                found.push(slice);
            }
            cursor = id + 1;
        }
        // Charge the policy's modeled traversal cost, not the descent's:
        // exhaustive low-ID pays the full graph walk; first-match pays the
        // node span the linear scan would have covered.
        let visited = if exhaustive {
            len as u64
        } else if found.len() == want {
            (found.last().expect("want > 0").node as usize - start + 1) as u64
        } else {
            (len - start) as u64
        };
        self.visited_last = visited;
        self.visited_total += visited;
        if !exhaustive {
            // The linear scan bumps the hint past every leading infeasible
            // node; its final value is the first feasible ID (or the node
            // count when nothing matched at all).
            match first_feasible {
                Some(f) if f > start => {
                    self.scan_hints.insert(*shape, f);
                }
                None if len > start => {
                    self.scan_hints.insert(*shape, len);
                }
                _ => {}
            }
        }
        if found.len() < want {
            return None;
        }
        for slice in &found {
            self.commit(slice);
        }
        Some(Alloc { slices: found })
    }

    /// Aggregate free capacity over *undrained* nodes:
    /// `(nodes, gpus, cores)`. This is the optimistic resource profile the
    /// scheduler's backfill reservation estimator starts from — counts are
    /// necessary but not sufficient for a placement (fragmentation and
    /// affinity can still fail), so an estimate built on them is a lower
    /// bound on any real fit time.
    pub fn free_totals(&self) -> (u64, u64, u64) {
        let mut nodes = 0u64;
        let mut gpus = 0u64;
        let mut cores = 0u64;
        for n in &self.nodes {
            if n.drained {
                continue;
            }
            nodes += 1;
            gpus += n.free_gpus.count_ones() as u64;
            cores += n.free_cores.count_ones() as u64;
        }
        (nodes, gpus, cores)
    }

    /// Attempts to allocate `shape` using only nodes in `[lo, hi)` — the
    /// placement primitive for hierarchical scheduling, where a parent
    /// instance partitions the machine across child schedulers and each
    /// child matches inside its own node range (Flux-style instances).
    ///
    /// The scan is a plain lowest-ID-first walk of the range: the per-shape
    /// scan hints and the segment-tree descent both index the whole
    /// machine, so a range match bypasses them and charges the span it
    /// actually inspected (the full range under
    /// [`MatchPolicy::LowIdExhaustive`], mirroring the modeled Flux
    /// traversal of a child instance's graph).
    pub fn try_alloc_range(
        &mut self,
        shape: &JobShape,
        policy: MatchPolicy,
        lo: usize,
        hi: usize,
    ) -> Option<Alloc> {
        let hi = hi.min(self.nodes.len());
        let want = shape.nodes as usize;
        if want == 0 {
            self.visited_last = 0;
            return Some(Alloc { slices: vec![] });
        }
        let exhaustive = policy == MatchPolicy::LowIdExhaustive;
        let mut found: Vec<NodeAlloc> = Vec::with_capacity(want);
        let mut visited = 0u64;
        for id in lo..hi {
            if !exhaustive && found.len() == want {
                break;
            }
            visited += 1;
            if found.len() < want {
                if let Some(slice) = self.match_node(id as NodeId, shape) {
                    found.push(slice);
                }
            }
        }
        self.visited_last = visited;
        self.visited_total += visited;
        if found.len() < want {
            return None;
        }
        for slice in &found {
            self.commit(slice);
        }
        Some(Alloc { slices: found })
    }

    /// Releases an allocation obtained from [`ResourceGraph::try_alloc`].
    ///
    /// # Panics
    /// Panics (in debug builds) when resources are released twice.
    pub fn release(&mut self, alloc: &Alloc) {
        // Freed capacity may make low nodes feasible again for any shape.
        if let Some(lowest) = alloc.slices.iter().map(|s| s.node as usize).min() {
            for hint in self.scan_hints.values_mut() {
                *hint = (*hint).min(lowest);
            }
        }
        for s in &alloc.slices {
            let node = &mut self.nodes[s.node as usize];
            debug_assert_eq!(node.free_cores & s.core_mask, 0, "double release of cores");
            debug_assert_eq!(node.free_gpus & s.gpu_mask, 0, "double release of gpus");
            node.free_cores |= s.core_mask;
            node.free_gpus |= s.gpu_mask;
            self.used_cores -= s.core_mask.count_ones() as u64;
            self.used_gpus -= s.gpu_mask.count_ones() as u64;
            self.reindex(s.node as usize);
        }
    }

    fn commit(&mut self, s: &NodeAlloc) {
        let node = &mut self.nodes[s.node as usize];
        node.free_cores &= !s.core_mask;
        node.free_gpus &= !s.gpu_mask;
        self.used_cores += s.core_mask.count_ones() as u64;
        self.used_gpus += s.gpu_mask.count_ones() as u64;
        self.reindex(s.node as usize);
    }

    /// Tries to carve one node-slice of `shape` out of node `id`.
    fn match_node(&self, id: NodeId, shape: &JobShape) -> Option<NodeAlloc> {
        let st = &self.nodes[id as usize];
        if st.drained {
            return None;
        }
        if st.free_gpus.count_ones() < shape.gpus_per_node
            || st.free_cores.count_ones() < shape.cores_per_node
        {
            return None;
        }
        match shape.affinity {
            Affinity::None => {
                let gpu_mask = lowest_bits_u8(st.free_gpus, shape.gpus_per_node)?;
                let core_mask = lowest_bits_u64(st.free_cores, shape.cores_per_node)?;
                Some(NodeAlloc {
                    node: id,
                    core_mask,
                    gpu_mask,
                })
            }
            Affinity::PackCores => {
                // Deliberate placement (§4.3): CPU-only jobs spread evenly
                // across sockets and take the *highest* core IDs, keeping
                // the PCIe-adjacent low cores of every socket free so no
                // GPU is stranded on nodes that host setup/continuum work.
                let sockets = self.spec.node.sockets;
                let mut core_mask = 0u64;
                let mut need = shape.cores_per_node;
                let per_socket = need.div_ceil(sockets);
                for s in 0..sockets {
                    if need == 0 {
                        break;
                    }
                    let avail = st.free_cores & socket_mask(&self.spec, s);
                    let take = per_socket.min(need).min(avail.count_ones());
                    if take > 0 {
                        core_mask |= highest_bits_u64(avail, take).expect("count checked");
                        need -= take;
                    }
                }
                // Second pass: any remainder from wherever it fits.
                for s in 0..sockets {
                    if need == 0 {
                        break;
                    }
                    let avail = st.free_cores & socket_mask(&self.spec, s) & !core_mask;
                    let take = need.min(avail.count_ones());
                    if take > 0 {
                        core_mask |= highest_bits_u64(avail, take).expect("count checked");
                        need -= take;
                    }
                }
                if need > 0 {
                    return None;
                }
                Some(NodeAlloc {
                    node: id,
                    core_mask,
                    gpu_mask: 0,
                })
            }
            Affinity::PackNearGpu => {
                // Allocate each GPU with cores on its own socket; cores are
                // the lowest free IDs on that socket (nearest PCIe).
                let mut free_cores = st.free_cores;
                let mut free_gpus = st.free_gpus;
                let mut core_mask = 0u64;
                let mut gpu_mask = 0u8;
                let cores_per_gpu = shape.cores_per_node / shape.gpus_per_node.max(1);
                let mut remainder = shape.cores_per_node % shape.gpus_per_node.max(1);
                for _ in 0..shape.gpus_per_node {
                    let want = cores_per_gpu + if remainder > 0 { 1 } else { 0 };
                    remainder = remainder.saturating_sub(1);
                    let mut placed = false;
                    for g in 0..self.spec.node.gpus {
                        if free_gpus & (1 << g) == 0 {
                            continue;
                        }
                        let sm = socket_mask(&self.spec, self.spec.node.socket_of_gpu(g));
                        let avail = free_cores & sm;
                        if avail.count_ones() >= want {
                            let cm = lowest_bits_u64(avail, want).expect("count checked");
                            free_gpus &= !(1 << g);
                            free_cores &= !cm;
                            gpu_mask |= 1 << g;
                            core_mask |= cm;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        return None;
                    }
                }
                Some(NodeAlloc {
                    node: id,
                    core_mask,
                    gpu_mask,
                })
            }
        }
    }
}

/// Bitmask of the cores on `socket`.
fn socket_mask(spec: &MachineSpec, socket: u32) -> u64 {
    let r = spec.node.cores_on_socket(socket);
    mask_lo_u64(r.end) & !mask_lo_u64(r.start)
}

fn mask_lo_u64(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

fn mask_lo_u8(n: u32) -> u8 {
    if n >= 8 {
        u8::MAX
    } else {
        (1u8 << n) - 1
    }
}

/// Picks the `count` lowest set bits of `mask`, or `None` if too few.
fn lowest_bits_u64(mask: u64, count: u32) -> Option<u64> {
    if mask.count_ones() < count {
        return None;
    }
    let mut out = 0u64;
    let mut m = mask;
    for _ in 0..count {
        let b = m & m.wrapping_neg();
        out |= b;
        m &= !b;
    }
    Some(out)
}

/// Picks the `count` lowest set bits of an 8-bit mask.
fn lowest_bits_u8(mask: u8, count: u32) -> Option<u8> {
    lowest_bits_u64(mask as u64, count).map(|m| m as u8)
}

/// Picks the `count` highest set bits of `mask`, or `None` if too few.
fn highest_bits_u64(mask: u64, count: u32) -> Option<u64> {
    if mask.count_ones() < count {
        return None;
    }
    let mut out = 0u64;
    let mut m = mask;
    for _ in 0..count {
        let b = 63 - m.leading_zeros();
        out |= 1u64 << b;
        m &= !(1u64 << b);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn small(nodes: u32) -> ResourceGraph {
        ResourceGraph::new(MachineSpec::custom("test", nodes, NodeSpec::summit()))
    }

    #[test]
    fn sim_jobs_fill_node_gpu_by_gpu() {
        let mut g = small(1);
        let mut allocs = Vec::new();
        for _ in 0..6 {
            allocs.push(
                g.try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
                    .unwrap(),
            );
        }
        assert_eq!(g.gpu_usage(), (6, 6));
        // 7th sim does not fit (no GPUs).
        assert!(g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .is_none());
        // Each sim got 2 cores, packed near its GPU's socket.
        assert_eq!(g.cpu_usage().0, 12);
        for a in &allocs {
            g.release(a);
        }
        assert_eq!(g.gpu_usage().0, 0);
        assert_eq!(g.cpu_usage().0, 0);
    }

    #[test]
    fn near_gpu_cores_share_the_gpus_socket() {
        let mut g = small(1);
        let a = g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .unwrap();
        let slice = a.slices[0];
        let gpu = slice.gpu_mask.trailing_zeros();
        let socket = NodeSpec::summit().socket_of_gpu(gpu);
        let r = NodeSpec::summit().cores_on_socket(socket);
        for c in 0..64 {
            if slice.core_mask & (1 << c) != 0 {
                assert!(r.contains(&(c as u32)), "core {c} not on socket {socket}");
            }
        }
    }

    #[test]
    fn setup_jobs_leave_gpus_untouched() {
        let mut g = small(1);
        let a = g
            .try_alloc(&JobShape::setup(), MatchPolicy::FirstMatch)
            .unwrap();
        assert_eq!(a.gpus(), 0);
        assert_eq!(a.cores(), 24);
        assert_eq!(g.gpu_usage().0, 0);
    }

    #[test]
    fn multi_node_continuum_job() {
        let mut g = small(200);
        let a = g
            .try_alloc(&JobShape::continuum(150), MatchPolicy::FirstMatch)
            .unwrap();
        assert_eq!(a.slices.len(), 150);
        assert_eq!(a.cores(), 3600);
        let nodes: std::collections::HashSet<NodeId> = a.slices.iter().map(|s| s.node).collect();
        assert_eq!(nodes.len(), 150, "slices must land on distinct nodes");
    }

    #[test]
    fn insufficient_resources_hold_nothing() {
        let mut g = small(2);
        let before = g.cpu_usage().0;
        assert!(g
            .try_alloc(&JobShape::continuum(3), MatchPolicy::FirstMatch)
            .is_none());
        assert_eq!(g.cpu_usage().0, before, "failed alloc must not leak");
    }

    #[test]
    fn first_match_visits_fewer_nodes_than_exhaustive() {
        let mut g = small(1000);
        g.try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .unwrap();
        let fm = g.visited_last();
        g.try_alloc(&JobShape::sim_standard(), MatchPolicy::LowIdExhaustive)
            .unwrap();
        let ex = g.visited_last();
        assert_eq!(fm, 1);
        assert_eq!(ex, 1000);
    }

    #[test]
    fn drained_nodes_are_skipped() {
        let mut g = small(2);
        g.drain(0);
        let a = g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .unwrap();
        assert_eq!(a.slices[0].node, 1);
        g.undrain(0);
        let b = g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .unwrap();
        assert_eq!(b.slices[0].node, 0);
    }

    #[test]
    fn draining_whole_machine_blocks_allocation() {
        let mut g = small(3);
        for n in 0..3 {
            g.drain(n);
        }
        assert!(g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .is_none());
        assert!(g.is_drained(2));
    }

    #[test]
    fn bundled_job_takes_all_gpus_of_a_node() {
        let mut g = small(1);
        let a = g
            .try_alloc(&JobShape::sim_bundled(6, 5), MatchPolicy::FirstMatch)
            .unwrap();
        assert_eq!(a.gpus(), 6);
        assert!(g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .is_none());
        g.release(&a);
    }

    #[test]
    fn mixed_setup_and_sim_jobs_coexist_on_a_node() {
        // A 24-core setup job takes 12 high cores from each socket, so
        // every socket keeps 10 low (PCIe-adjacent) cores and all six GPUs
        // can still host 2-core sims — the paper's "reserving all GPUs for
        // simulations" placement.
        let mut g = small(1);
        let setup = g
            .try_alloc(&JobShape::setup(), MatchPolicy::FirstMatch)
            .unwrap();
        let mut sims = 0;
        while g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .is_some()
        {
            sims += 1;
        }
        assert_eq!(sims, 6, "no GPU may be stranded by a setup job");
        let _ = setup;
    }

    #[test]
    fn pack_cores_takes_high_ids_balanced_across_sockets() {
        let mut g = small(1);
        let a = g
            .try_alloc(&JobShape::setup(), MatchPolicy::FirstMatch)
            .unwrap();
        let mask = a.slices[0].core_mask;
        let spec = NodeSpec::summit();
        for s in 0..2 {
            let r = spec.cores_on_socket(s);
            let on_socket = (r.clone()).filter(|&c| mask & (1u64 << c) != 0).count();
            assert_eq!(on_socket, 12, "12 cores per socket");
            // The lowest cores of each socket (near PCIe) stay free.
            assert_eq!(mask & (1u64 << r.start), 0);
            // The highest core of each socket is taken.
            assert_ne!(mask & (1u64 << (r.end - 1)), 0);
        }
    }

    #[test]
    fn lowest_bits_helpers() {
        assert_eq!(lowest_bits_u64(0b1011, 2), Some(0b0011));
        assert_eq!(lowest_bits_u64(0b1000, 2), None);
        assert_eq!(lowest_bits_u8(0b110, 1), Some(0b010));
    }

    #[test]
    fn free_totals_track_usage_and_drains() {
        let mut g = small(3);
        let spec = NodeSpec::summit();
        let per_node_cores = spec.cores() as u64;
        assert_eq!(g.free_totals(), (3, 18, 3 * per_node_cores));
        let a = g
            .try_alloc(&JobShape::sim_standard(), MatchPolicy::FirstMatch)
            .unwrap();
        let (n, gp, c) = g.free_totals();
        assert_eq!((n, gp), (3, 17));
        assert_eq!(c, 3 * per_node_cores - 2);
        g.drain(2);
        let (n, gp, _) = g.free_totals();
        assert_eq!((n, gp), (2, 11), "drained node drops out wholesale");
        g.release(&a);
        assert_eq!(g.free_totals().1, 12);
    }

    #[test]
    fn range_alloc_stays_inside_its_partition() {
        let mut g = small(4);
        // The [2, 4) child owns the high nodes: six sims fill node 2, the
        // seventh lands on node 3, and nodes 0-1 stay untouched.
        let mut allocs = Vec::new();
        for _ in 0..7 {
            allocs.push(
                g.try_alloc_range(&JobShape::sim_standard(), MatchPolicy::FirstMatch, 2, 4)
                    .unwrap(),
            );
        }
        assert!(allocs[..6].iter().all(|a| a.slices[0].node == 2));
        assert_eq!(allocs[6].slices[0].node, 3);
        // A 3-node shape cannot fit in a 2-node partition even though the
        // whole machine could host it.
        assert!(g
            .try_alloc_range(&JobShape::continuum(3), MatchPolicy::FirstMatch, 2, 4)
            .is_none());
        assert_eq!(
            g.free_totals().1,
            24 - 7,
            "nothing held by the failed range match"
        );
        // The other child's range is still all-free.
        let b = g
            .try_alloc_range(&JobShape::continuum(2), MatchPolicy::FirstMatch, 0, 2)
            .unwrap();
        assert_eq!(b.slices.len(), 2);
        assert!(b.slices.iter().all(|s| s.node < 2));
    }

    #[test]
    fn range_alloc_visit_accounting() {
        let mut g = small(10);
        g.try_alloc_range(&JobShape::sim_standard(), MatchPolicy::FirstMatch, 4, 10)
            .unwrap();
        assert_eq!(g.visited_last(), 1, "first-match stops at node 4");
        g.try_alloc_range(
            &JobShape::sim_standard(),
            MatchPolicy::LowIdExhaustive,
            4,
            10,
        )
        .unwrap();
        assert_eq!(g.visited_last(), 6, "exhaustive walks the whole range");
        g.drain(4);
        g.try_alloc_range(&JobShape::sim_standard(), MatchPolicy::FirstMatch, 4, 10)
            .unwrap();
        assert_eq!(g.visited_last(), 2, "drained node is visited but skipped");
    }

    #[test]
    fn visited_total_accumulates() {
        let mut g = small(100);
        g.try_alloc(&JobShape::sim_standard(), MatchPolicy::LowIdExhaustive)
            .unwrap();
        g.try_alloc(&JobShape::sim_standard(), MatchPolicy::LowIdExhaustive)
            .unwrap();
        assert_eq!(g.visited_total(), 200);
        g.reset_visited();
        assert_eq!(g.visited_total(), 0);
    }
}
