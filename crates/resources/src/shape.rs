//! Job resource requests and placement affinities.

/// How cores and GPUs of one node-slice of a job must be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Affinity {
    /// Any free cores/GPUs on the node.
    None,
    /// Allocate a GPU and put the job's cores on that GPU's socket, lowest
    /// core IDs first ("closest to the PCIe bus" for the analysis task,
    /// cache-sharing for the simulation cores). Requires `gpus_per_node >= 1`.
    PackNearGpu,
    /// Cores only, packed onto as few sockets as possible (setup jobs).
    PackCores,
}

/// A resource request: `nodes` node-slices, each with the same per-node
/// core/GPU requirement. MuMMI's four job types map to:
///
/// | job                | nodes | cores | gpus | affinity      |
/// |--------------------|-------|-------|------|---------------|
/// | CG/AA simulation+analysis | 1 | 2    | 1    | `PackNearGpu` |
/// | createsim / backmapping   | 1 | 24   | 0    | `PackCores`   |
/// | continuum (GridSim2D)     | 150 | 24 | 0    | `PackCores`   |
///
/// Each simulation reserves the two cache-sharing cores next to its GPU;
/// its analysis task rides SMT hardware threads on the same socket
/// ("closest to the PCIe bus") without reserving whole cores — POWER9 is
/// SMT4, and reserving full cores for analyses would strand GPUs on nodes
/// that also host 24-core setup jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobShape {
    /// Number of distinct nodes required.
    pub nodes: u32,
    /// Cores required on each node.
    pub cores_per_node: u32,
    /// GPUs required on each node.
    pub gpus_per_node: u32,
    /// Placement constraint within each node.
    pub affinity: Affinity,
}

impl JobShape {
    /// An unbundled simulation job: one GPU plus `cores` cores near it.
    /// MuMMI uses 1 GPU + 2 simulation cores + 3 analysis cores = 5.
    pub const fn sim(cores: u32) -> JobShape {
        JobShape {
            nodes: 1,
            cores_per_node: cores,
            gpus_per_node: 1,
            affinity: Affinity::PackNearGpu,
        }
    }

    /// The paper's standard simulation+analysis job: 1 GPU plus the two
    /// cache-sharing simulation cores (analysis on SMT threads).
    pub const fn sim_standard() -> JobShape {
        JobShape::sim(2)
    }

    /// A bundled simulation job (the pre-MuMMI-2 approach): all GPUs of a
    /// node plus their cores as a single job.
    pub const fn sim_bundled(gpus: u32, cores_per_gpu: u32) -> JobShape {
        JobShape {
            nodes: 1,
            cores_per_node: gpus * cores_per_gpu,
            gpus_per_node: gpus,
            affinity: Affinity::None,
        }
    }

    /// A CPU-only setup job (createsim/backmapping): 24 cores on one node.
    pub const fn setup() -> JobShape {
        JobShape {
            nodes: 1,
            cores_per_node: 24,
            gpus_per_node: 0,
            affinity: Affinity::PackCores,
        }
    }

    /// The continuum job: `nodes` nodes × 24 cores, no GPUs.
    pub const fn continuum(nodes: u32) -> JobShape {
        JobShape {
            nodes,
            cores_per_node: 24,
            gpus_per_node: 0,
            affinity: Affinity::PackCores,
        }
    }

    /// Total cores across all node-slices.
    pub const fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }

    /// Total GPUs across all node-slices.
    pub const fn total_gpus(&self) -> u64 {
        self.nodes as u64 * self.gpus_per_node as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shapes() {
        let sim = JobShape::sim_standard();
        assert_eq!(
            (sim.nodes, sim.cores_per_node, sim.gpus_per_node),
            (1, 2, 1)
        );
        assert_eq!(sim.affinity, Affinity::PackNearGpu);

        let setup = JobShape::setup();
        assert_eq!(setup.total_cores(), 24);
        assert_eq!(setup.total_gpus(), 0);

        let cont = JobShape::continuum(150);
        assert_eq!(cont.total_cores(), 3600); // the paper's 3600 MPI ranks
    }

    #[test]
    fn bundled_shape_consumes_whole_gpu_set() {
        let b = JobShape::sim_bundled(6, 5);
        assert_eq!(b.total_gpus(), 6);
        assert_eq!(b.total_cores(), 30);
    }
}
