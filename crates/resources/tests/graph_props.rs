//! Property-based invariants of the resource graph.

use proptest::prelude::*;
use resources::{JobShape, MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};

fn arb_shape() -> impl Strategy<Value = JobShape> {
    prop_oneof![
        Just(JobShape::sim_standard()),
        Just(JobShape::sim(3)),
        Just(JobShape::setup()),
        Just(JobShape::sim_bundled(6, 2)),
        (1u32..4).prop_map(JobShape::continuum),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any interleaving of allocations and releases keeps the usage
    /// counters equal to the sum of outstanding allocations and never
    /// exceeds the machine totals.
    #[test]
    fn usage_counters_are_conserved(
        ops in prop::collection::vec((arb_shape(), any::<bool>(), 0usize..8), 1..60),
        policy in prop_oneof![Just(MatchPolicy::FirstMatch), Just(MatchPolicy::LowIdExhaustive)],
    ) {
        let spec = MachineSpec::custom("prop", 6, NodeSpec::summit());
        let total_gpus = spec.total_gpus();
        let total_cores = spec.total_cores();
        let mut graph = ResourceGraph::new(spec);
        let mut held = Vec::new();
        for (shape, release_first, release_idx) in ops {
            if release_first && !held.is_empty() {
                let idx = release_idx % held.len();
                let alloc: resources::Alloc = held.swap_remove(idx);
                graph.release(&alloc);
            }
            if let Some(alloc) = graph.try_alloc(&shape, policy) {
                prop_assert_eq!(alloc.gpus(), shape.total_gpus());
                prop_assert_eq!(alloc.cores(), shape.total_cores());
                held.push(alloc);
            }
            let (gu, gt) = graph.gpu_usage();
            let (cu, ct) = graph.cpu_usage();
            prop_assert_eq!(gt, total_gpus);
            prop_assert_eq!(ct, total_cores);
            let held_gpus: u64 = held.iter().map(|a| a.gpus()).sum();
            let held_cores: u64 = held.iter().map(|a| a.cores()).sum();
            prop_assert_eq!(gu, held_gpus);
            prop_assert_eq!(cu, held_cores);
            prop_assert!(gu <= gt && cu <= ct);
        }
        // Releasing everything restores a pristine machine.
        for alloc in held.drain(..) {
            graph.release(&alloc);
        }
        prop_assert_eq!(graph.gpu_usage().0, 0);
        prop_assert_eq!(graph.cpu_usage().0, 0);
    }

    /// No two outstanding allocations ever share a core or a GPU.
    #[test]
    fn allocations_never_overlap(
        shapes in prop::collection::vec(arb_shape(), 1..40),
        policy in prop_oneof![Just(MatchPolicy::FirstMatch), Just(MatchPolicy::LowIdExhaustive)],
    ) {
        let mut graph = ResourceGraph::new(MachineSpec::custom("prop", 4, NodeSpec::summit()));
        let mut core_claims: std::collections::HashMap<u32, u64> = Default::default();
        let mut gpu_claims: std::collections::HashMap<u32, u8> = Default::default();
        for shape in shapes {
            if let Some(alloc) = graph.try_alloc(&shape, policy) {
                for s in &alloc.slices {
                    let cores = core_claims.entry(s.node).or_default();
                    prop_assert_eq!(*cores & s.core_mask, 0, "core overlap on node {}", s.node);
                    *cores |= s.core_mask;
                    let gpus = gpu_claims.entry(s.node).or_default();
                    prop_assert_eq!(*gpus & s.gpu_mask, 0, "gpu overlap on node {}", s.node);
                    *gpus |= s.gpu_mask;
                }
            }
        }
    }

    /// First-match and exhaustive agree on *feasibility* for a single
    /// request on identical graphs (they may pick different nodes).
    #[test]
    fn policies_agree_on_feasibility(
        prefill in prop::collection::vec(arb_shape(), 0..30),
        probe in arb_shape(),
    ) {
        let build = |policy| {
            let mut g = ResourceGraph::new(MachineSpec::custom("p", 3, NodeSpec::summit()));
            // Identical prefill placements (same policy ordering for both
            // graphs) so the states match exactly.
            for s in &prefill {
                let _ = g.try_alloc(s, MatchPolicy::FirstMatch);
            }

            g.try_alloc(&probe, policy).is_some()
        };
        prop_assert_eq!(
            build(MatchPolicy::FirstMatch),
            build(MatchPolicy::LowIdExhaustive)
        );
    }
}
