//! The patch autoencoder: metric-learning stand-in producing the latent
//! representation the patch selector samples in.
//!
//! The paper encodes each 30 nm × 30 nm patch into 9 dimensions with a deep
//! metric-learning network. We train a plain autoencoder with a 9-D (by
//! default) bottleneck on patch vectors; [`Autoencoder::encode`] then maps
//! any patch into the latent space. An autoencoder bottleneck preserves the
//! property the workflow relies on: nearby configurations encode nearby,
//! so farthest-point sampling in latent space favors novel patches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::net::{Activation, Adam, Mlp};

/// Autoencoder hyperparameters.
#[derive(Debug, Clone)]
pub struct AutoencoderConfig {
    /// Input dimensionality (flattened patch length).
    pub input_dim: usize,
    /// Hidden layer width (encoder and decoder mirror each other).
    pub hidden_dim: usize,
    /// Bottleneck (latent) dimensionality; the paper uses 9.
    pub latent_dim: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl AutoencoderConfig {
    /// A small default suitable for tests and the examples.
    pub fn small(input_dim: usize) -> AutoencoderConfig {
        AutoencoderConfig {
            input_dim,
            hidden_dim: 32,
            latent_dim: 9,
            lr: 1e-3,
            epochs: 30,
            batch: 32,
            seed: 20201214, // campaign start date
        }
    }
}

/// A trained (or trainable) patch autoencoder.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Mlp,
    decoder: Mlp,
    cfg: AutoencoderConfig,
}

impl Autoencoder {
    /// Builds an untrained autoencoder.
    pub fn new(cfg: AutoencoderConfig) -> Autoencoder {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let encoder = Mlp::new(
            &[cfg.input_dim, cfg.hidden_dim, cfg.latent_dim],
            Activation::Tanh,
            &mut rng,
        );
        let decoder = Mlp::new(
            &[cfg.latent_dim, cfg.hidden_dim, cfg.input_dim],
            Activation::Tanh,
            &mut rng,
        );
        Autoencoder {
            encoder,
            decoder,
            cfg,
        }
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.cfg.latent_dim
    }

    /// Mean reconstruction error over a batch.
    pub fn reconstruction_error(&self, xs: &Matrix) -> f64 {
        let z = self.encoder.forward(xs);
        let y = self.decoder.forward(&z);
        y.sub(xs).mean_sq()
    }

    /// Trains on `samples` (rows = patch vectors); returns per-epoch losses.
    ///
    /// The full network (encoder ∘ decoder) is trained end-to-end by
    /// backpropagating the reconstruction MSE through a stacked MLP, then
    /// splitting the learned layers back into encoder and decoder halves.
    pub fn train(&mut self, samples: &Matrix) -> Vec<f64> {
        let mut stacked = stack(&self.encoder, &self.decoder);
        let mut adam = Adam::new(&stacked, self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xae);
        let n = samples.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.cfg.batch.max(1)) {
                let mut data = Vec::with_capacity(chunk.len() * self.cfg.input_dim);
                for &r in chunk {
                    data.extend_from_slice(samples.row(r));
                }
                let x = Matrix::from_vec(chunk.len(), self.cfg.input_dim, data);
                let (loss, grads) = stacked.mse_gradients(&x, &x);
                adam.step(&mut stacked, &grads);
                epoch_loss += loss;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
        }
        let (enc, dec) = unstack(&stacked, self.encoder.layers().len());
        self.encoder = enc;
        self.decoder = dec;
        losses
    }

    /// Encodes one patch vector into latent space.
    ///
    /// # Panics
    /// Panics when `x.len()` differs from the configured input dim.
    pub fn encode(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cfg.input_dim, "patch dimension mismatch");
        let m = Matrix::row_vector(x.to_vec());
        self.encoder.forward(&m).data().to_vec()
    }

    /// Encodes a batch of patch vectors in parallel.
    pub fn encode_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.par_iter().map(|x| self.encode(x)).collect() // lint: allow(L8: pure per-item encode; indexed collect preserves input order)
    }
}

/// Concatenates encoder and decoder layers into one MLP for joint training.
fn stack(encoder: &Mlp, decoder: &Mlp) -> Mlp {
    let mut layers = encoder.layers().to_vec();
    layers.extend_from_slice(decoder.layers());
    Mlp::from_layers(layers)
}

/// Splits a stacked MLP back into encoder (first `enc_layers`) and decoder.
fn unstack(stacked: &Mlp, enc_layers: usize) -> (Mlp, Mlp) {
    let layers = stacked.layers();
    (
        Mlp::from_layers(layers[..enc_layers].to_vec()),
        Mlp::from_layers(layers[enc_layers..].to_vec()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Synthetic "patches": smooth 2-mode fields with 2 latent factors.
    fn synthetic_patches(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            for i in 0..dim {
                let x = i as f64 / dim as f64;
                let v = a * (std::f64::consts::TAU * x).sin()
                    + b * (std::f64::consts::TAU * 2.0 * x).cos();
                data.push(v * 0.5);
            }
        }
        Matrix::from_vec(n, dim, data)
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let patches = synthetic_patches(256, 16, 1);
        let mut cfg = AutoencoderConfig::small(16);
        cfg.epochs = 40;
        cfg.latent_dim = 4;
        let mut ae = Autoencoder::new(cfg);
        let before = ae.reconstruction_error(&patches);
        let losses = ae.train(&patches);
        let after = ae.reconstruction_error(&patches);
        assert!(
            after < before * 0.2,
            "reconstruction error {before} -> {after}"
        );
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn encode_has_latent_dim_and_is_deterministic() {
        let patches = synthetic_patches(64, 16, 2);
        let mut cfg = AutoencoderConfig::small(16);
        cfg.epochs = 5;
        let mut ae = Autoencoder::new(cfg);
        ae.train(&patches);
        let z1 = ae.encode(patches.row(0));
        let z2 = ae.encode(patches.row(0));
        assert_eq!(z1.len(), 9);
        assert_eq!(z1, z2);
    }

    #[test]
    fn similar_patches_encode_nearby() {
        let patches = synthetic_patches(256, 16, 3);
        let mut cfg = AutoencoderConfig::small(16);
        cfg.epochs = 40;
        cfg.latent_dim = 4;
        let mut ae = Autoencoder::new(cfg);
        ae.train(&patches);

        let base: Vec<f64> = patches.row(0).to_vec();
        let mut nearby = base.clone();
        for v in &mut nearby {
            *v += 0.01;
        }
        let far: Vec<f64> = base.iter().map(|v| -v).collect();

        let d_near = dist(&ae.encode(&base), &ae.encode(&nearby));
        let d_far = dist(&ae.encode(&base), &ae.encode(&far));
        assert!(
            d_near < d_far,
            "near {d_near} should encode closer than far {d_far}"
        );
    }

    #[test]
    fn encode_batch_matches_sequential() {
        let patches = synthetic_patches(16, 8, 4);
        let ae = Autoencoder::new(AutoencoderConfig::small(8));
        let xs: Vec<Vec<f64>> = (0..16).map(|r| patches.row(r).to_vec()).collect();
        let batch = ae.encode_batch(&xs);
        for (x, z) in xs.iter().zip(&batch) {
            assert_eq!(&ae.encode(x), z);
        }
    }

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}
