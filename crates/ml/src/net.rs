//! Dense layers, activations, backpropagation, and Adam.

// Numeric kernels below index several arrays along a shared axis;
// indexed loops are clearer than zipped iterators there.
#![allow(clippy::needless_range_loop)]

use rand::Rng;

use crate::matrix::Matrix;

/// Element-wise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// x
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn deriv_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// A fully-connected layer `y = act(x W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, shape (in, out).
    pub w: Matrix,
    /// Bias, length out.
    pub b: Vec<f64>,
    /// Nonlinearity.
    pub act: Activation,
}

impl Dense {
    /// Xavier-initialized layer.
    pub fn new(inputs: usize, outputs: usize, act: Activation, rng: &mut impl Rng) -> Dense {
        Dense {
            w: Matrix::xavier(inputs, outputs, rng),
            b: vec![0.0; outputs],
            act,
        }
    }

    /// Forward pass for a batch (rows = samples).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_bias(&self.b);
        z.map(|v| self.act.apply(v))
    }
}

/// Per-layer gradient.
#[derive(Debug, Clone)]
pub struct LayerGrad {
    dw: Matrix,
    db: Vec<f64>,
}

/// A multilayer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes and a shared hidden
    /// activation; the output layer is linear.
    ///
    /// # Panics
    /// Panics when fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden: Activation, rng: &mut impl Rng) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp { layers }
    }

    /// Builds an MLP from pre-constructed layers.
    ///
    /// # Panics
    /// Panics when `layers` is empty or consecutive shapes do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Mlp {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].w.cols(),
                pair[1].w.rows(),
                "layer shapes do not chain"
            );
        }
        Mlp { layers }
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").w.cols()
    }

    /// Batch forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.forward(&a);
        }
        a
    }

    /// Forward pass keeping every layer's output (for backprop).
    fn forward_trace(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Computes MSE loss and gradients for a batch: loss = mean((y - t)^2).
    pub fn mse_gradients(&self, x: &Matrix, target: &Matrix) -> (f64, Vec<LayerGrad>) {
        let acts = self.forward_trace(x);
        let y = acts.last().expect("forward output");
        let diff = y.sub(target);
        let loss = diff.mean_sq();
        let n = (y.rows() * y.cols()) as f64;

        // dL/dy for MSE = 2 (y - t) / N
        let mut delta = diff.map(|v| 2.0 * v / n);
        let mut grads: Vec<LayerGrad> = Vec::with_capacity(self.layers.len());
        for (li, layer) in self.layers.iter().enumerate().rev() {
            // delta currently holds dL/d(output of layer li) — fold in the
            // activation derivative to get dL/dz.
            let out = &acts[li + 1];
            let dz = delta.hadamard(&out.map(|v| layer.act.deriv_from_output(v)));
            let input = &acts[li];
            let dw = input.transpose().matmul(&dz);
            let db = dz.col_sums();
            grads.push(LayerGrad { dw, db });
            if li > 0 {
                delta = dz.matmul(&layer.w.transpose());
            }
        }
        grads.reverse();
        (loss, grads)
    }

    /// Applies raw SGD with learning rate `lr`.
    pub fn apply_sgd(&mut self, grads: &[LayerGrad], lr: f64) {
        for (layer, g) in self.layers.iter_mut().zip(grads) {
            for (w, d) in layer.w.data_mut().iter_mut().zip(g.dw.data()) {
                *w -= lr * d;
            }
            for (b, d) in layer.b.iter_mut().zip(&g.db) {
                *b -= lr * d;
            }
        }
    }
}

/// Adam optimizer state for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<(Vec<f64>, Vec<f64>)>,
    v: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Standard Adam with the usual defaults.
    pub fn new(net: &Mlp, lr: f64) -> Adam {
        let shapes: Vec<(usize, usize)> = net
            .layers()
            .iter()
            .map(|l| (l.w.data().len(), l.b.len()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes
                .iter()
                .map(|&(w, b)| (vec![0.0; w], vec![0.0; b]))
                .collect(),
            v: shapes
                .iter()
                .map(|&(w, b)| (vec![0.0; w], vec![0.0; b]))
                .collect(),
        }
    }

    /// Applies one Adam update.
    pub fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (li, g) in grads.iter().enumerate() {
            let layer = &mut net.layers[li];
            let (mw, mb) = &mut self.m[li];
            let (vw, vb) = &mut self.v[li];
            for (i, (&d, w)) in g.dw.data().iter().zip(layer.w.data_mut()).enumerate() {
                mw[i] = self.beta1 * mw[i] + (1.0 - self.beta1) * d;
                vw[i] = self.beta2 * vw[i] + (1.0 - self.beta2) * d * d;
                *w -= self.lr * (mw[i] / bc1) / ((vw[i] / bc2).sqrt() + self.eps);
            }
            for (i, (&d, b)) in g.db.iter().zip(layer.b.iter_mut()).enumerate() {
                mb[i] = self.beta1 * mb[i] + (1.0 - self.beta1) * d;
                vb[i] = self.beta2 * vb[i] + (1.0 - self.beta2) * d * d;
                *b -= self.lr * (mb[i] / bc1) / ((vb[i] / bc2).sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 2);
        let x = Matrix::zeros(5, 4);
        let y = net.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 2));
    }

    /// Finite-difference check of the analytic gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.4, -0.6]);
        let t = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let (_, grads) = net.mse_gradients(&x, &t);

        let eps = 1e-6;
        for li in 0..net.layers.len() {
            for wi in [0usize, 1, 2] {
                let orig = net.layers[li].w.data()[wi];
                net.layers[li].w.data_mut()[wi] = orig + eps;
                let (lp, _) = net.mse_gradients(&x, &t);
                net.layers[li].w.data_mut()[wi] = orig - eps;
                let (lm, _) = net.mse_gradients(&x, &t);
                net.layers[li].w.data_mut()[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[li].dw.data()[wi];
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "layer {li} w[{wi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn sgd_reduces_loss_on_linear_task() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 1], Activation::Relu, &mut rng);
        // Learn y = x0 + 2*x1.
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let t = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let (l0, _) = net.mse_gradients(&x, &t);
        for _ in 0..500 {
            let (_, g) = net.mse_gradients(&x, &t);
            net.apply_sgd(&g, 0.1);
        }
        let (l1, _) = net.mse_gradients(&x, &t);
        assert!(l1 < l0 * 1e-3, "loss did not drop: {l0} -> {l1}");
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_scaled_task() {
        let mut rng = StdRng::seed_from_u64(11);
        let net0 = Mlp::new(&[3, 6, 1], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(
            4,
            3,
            vec![0.1, 0.0, 0.9, 0.8, 0.2, 0.1, 0.3, 0.7, 0.5, 0.9, 0.9, 0.0],
        );
        let t = Matrix::from_vec(4, 1, vec![0.2, 0.9, 0.4, 0.7]);

        let run = |mut net: Mlp, use_adam: bool| -> f64 {
            let mut adam = Adam::new(&net, 0.01);
            for _ in 0..200 {
                let (_, g) = net.mse_gradients(&x, &t);
                if use_adam {
                    adam.step(&mut net, &g);
                } else {
                    net.apply_sgd(&g, 0.01);
                }
            }
            net.mse_gradients(&x, &t).0
        };
        let sgd_loss = run(net0.clone(), false);
        let adam_loss = run(net0, true);
        assert!(
            adam_loss < sgd_loss,
            "adam {adam_loss} should beat sgd {sgd_loss} at equal budget"
        );
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(&[1, 1, 1], Activation::Relu, &mut rng);
        // Force the hidden pre-activation negative for x=1.
        net.layers[0].w.data_mut()[0] = -1.0;
        net.layers[0].b[0] = 0.0;
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let t = Matrix::from_vec(1, 1, vec![5.0]);
        let (_, g) = net.mse_gradients(&x, &t);
        assert_eq!(g[0].dw.data()[0], 0.0, "dead ReLU passes no gradient");
    }
}
