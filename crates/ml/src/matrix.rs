//! Row-major f64 matrices with the operations the networks need.

use rand::Rng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// A single-row matrix view of a vector.
    pub fn row_vector(data: Vec<f64>) -> Matrix {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer of shape
    /// `(fan_in, fan_out)`.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix {
            rows: fan_in,
            cols: fan_out,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data view.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Adds a bias row-vector to every row.
    ///
    /// # Panics
    /// Panics when `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Mean squared value over all elements.
    pub fn mean_sq(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn bias_and_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_bias(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn hadamard_and_sub() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 10, &mut rng);
        let limit = (6.0f64 / 20.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= limit));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(m, Matrix::xavier(10, 10, &mut rng2));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
