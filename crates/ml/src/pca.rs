//! Principal component analysis via power iteration with deflation.
//!
//! §4.4 Task 2 notes that encoded representations "may be computed using a
//! ML inference engine … , a simpler dimensionality reduction (e.g.,
//! principal component analysis), or any configurational representation."
//! This is that simpler encoder.

// Numeric kernels below index several arrays along a shared axis;
// indexed loops are clearer than zipped iterators there.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// A fitted PCA model: mean vector plus the leading principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Components, one row per principal axis (unit vectors).
    components: Matrix,
    /// Variance explained by each component, descending.
    explained: Vec<f64>,
}

impl Pca {
    /// Fits `k` components to `samples` (rows = observations).
    ///
    /// # Panics
    /// Panics when there are no samples or `k` exceeds the dimensionality.
    pub fn fit(samples: &Matrix, k: usize) -> Pca {
        let n = samples.rows();
        let d = samples.cols();
        assert!(n > 0, "pca needs samples");
        assert!(k >= 1 && k <= d, "k must be in 1..=dim");

        let mut mean = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(samples.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }

        // Covariance matrix (d × d).
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let row = samples.row(r);
            for i in 0..d {
                let xi = row[i] - mean[i];
                for j in i..d {
                    let xj = row[j] - mean[j];
                    *cov.at_mut(i, j) += xi * xj;
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov.at(i, j) / n as f64;
                *cov.at_mut(i, j) = v;
                *cov.at_mut(j, i) = v;
            }
        }

        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        let mut work = cov;
        let mut prior: Vec<Vec<f64>> = Vec::with_capacity(k);
        for comp in 0..k {
            let (vec_, val) = power_iteration(&work, 500, 1e-12, &prior);
            explained.push(val.max(0.0));
            components.data_mut()[comp * d..(comp + 1) * d].copy_from_slice(&vec_);
            // Deflate: work -= val * v v^T
            for i in 0..d {
                for j in 0..d {
                    *work.at_mut(i, j) -= val * vec_[i] * vec_[j];
                }
            }
            prior.push(vec_);
        }
        Pca {
            mean,
            components,
            explained,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Variance explained per component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// The principal axes (rows, unit length).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects one observation onto the principal axes.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        (0..self.k())
            .map(|c| {
                self.components
                    .row(c)
                    .iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(&w, (&v, &m))| w * (v - m))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch (rows = observations).
    pub fn transform_batch(&self, xs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(xs.rows(), self.k());
        for r in 0..xs.rows() {
            let t = self.transform(xs.row(r));
            out.data_mut()[r * self.k()..(r + 1) * self.k()].copy_from_slice(&t);
        }
        out
    }
}

/// Leading eigenpair of a symmetric matrix by power iteration, kept
/// orthogonal to `prior` components (robust when eigenvalues are nearly
/// degenerate, where deflation alone drifts).
fn power_iteration(a: &Matrix, max_iters: usize, tol: f64, prior: &[Vec<f64>]) -> (Vec<f64>, f64) {
    let d = a.rows();
    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..d).map(|i| 1.0 + (i as f64) * 1e-3).collect();
    orthogonalize(&mut v, prior);
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..max_iters {
        let mut w = vec![0.0; d];
        for i in 0..d {
            let row = a.row(i);
            w[i] = row.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        }
        let new_lambda: f64 = w.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        orthogonalize(&mut w, prior);
        let norm = normalize(&mut w);
        if norm < 1e-300 {
            // Matrix annihilated the vector: zero eigenvalue.
            return (v, 0.0);
        }
        let done = (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0);
        v = w;
        lambda = new_lambda;
        if done {
            break;
        }
    }
    (v, lambda)
}

/// Gram-Schmidt: removes the projections of `v` onto each of `basis`.
fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(&x, &y)| x * y).sum();
        for (x, &y) in v.iter_mut().zip(b) {
            *x -= dot * y;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic data stretched along a known axis.
    fn stretched_data(n: usize, axis: [f64; 3], spread: f64, noise: f64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(42);
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let t: f64 = rng.gen_range(-spread..spread);
            for a in axis {
                data.push(t * a + rng.gen_range(-noise..noise));
            }
        }
        Matrix::from_vec(n, 3, data)
    }

    #[test]
    fn recovers_dominant_axis() {
        let inv3 = 1.0 / (3.0f64).sqrt();
        let data = stretched_data(500, [inv3, inv3, inv3], 10.0, 0.1);
        let pca = Pca::fit(&data, 1);
        let c = pca.components().row(0);
        let dot: f64 = c.iter().map(|&v| v * inv3).sum();
        assert!(dot.abs() > 0.999, "axis alignment was {dot}");
        assert!(pca.explained_variance()[0] > 10.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = Matrix::from_vec(200, 4, (0..800).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = pca
                    .components()
                    .row(i)
                    .iter()
                    .zip(pca.components().row(j))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-6, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut data = Vec::new();
        for _ in 0..300 {
            data.push(rng.gen_range(-10.0..10.0));
            data.push(rng.gen_range(-3.0..3.0));
            data.push(rng.gen_range(-0.5..0.5));
        }
        let pca = Pca::fit(&Matrix::from_vec(300, 3, data), 3);
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2], "not descending: {ev:?}");
        assert!(ev[0] > 10.0 * ev[2]);
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_vec(4, 2, vec![10.0, 0.0, 12.0, 0.0, 14.0, 0.0, 16.0, 0.0]);
        let pca = Pca::fit(&data, 1);
        // The mean point must project to the origin.
        let z = pca.transform(&[13.0, 0.0]);
        assert!(z[0].abs() < 1e-9);
        let batch = pca.transform_batch(&data);
        let sum: f64 = (0..4).map(|r| batch.at(r, 0)).sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn excessive_k_panics() {
        let data = Matrix::zeros(5, 2);
        let _ = Pca::fit(&data, 3);
    }
}
