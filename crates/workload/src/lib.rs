//! Workload sources: who submits jobs, decoupled from how they schedule.
//!
//! The paper's campaign is one workload — the WM-driven three-scale
//! stream, throttled to ~100 jobs/min (§4.3). Demonstrating that the
//! coordination results are properties of the *design* rather than of
//! that single workload requires driving the same scheduler with other
//! job streams: recorded traces replayed exactly (the §4.4 history-file
//! discipline, and the alibaba-trace shape cluster simulators use), and
//! seeded synthetic adversarial mixes (wide jobs starving narrow ones,
//! bursty arrivals, heterogeneous shapes).
//!
//! [`WorkloadSource`] is the cadence-invariant pull interface — the same
//! shape as the campaign's `FailureProcess`: random draws are consumed
//! only when an arrival is *realised*, so two drivers polling on
//! different cadences (or jumping event-driven) observe the identical
//! job stream. Implementations here:
//!
//! - [`TraceReplayer`] — replays a [`TraceFile`] (CSV or JSONL records,
//!   parseable from a recorded [`sched::SchedLog`]);
//! - [`PaperMix`] — the paper's continuum + throttled-sims mix, scaled
//!   to the target allocation;
//! - [`WideStarvesNarrow`], [`BurstyPoisson`], [`HeteroShapes`] — the
//!   adversarial generators, each on its own seed.
//!
//! [`WorkloadSpec`] is the cloneable wire/CLI-level description
//! (`"paper-mix"`, `"trace:<path>"`, …) that configs carry; sources are
//! built from it at run start.

mod spec;
mod synth;
mod trace;

use simcore::SimTime;

pub use spec::WorkloadSpec;
pub use synth::{BurstyPoisson, HeteroShapes, PaperMix, WideStarvesNarrow};
pub use trace::{TraceError, TraceFile, TraceReplayer};

/// One job arrival: when it is submitted and what is submitted.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadJob {
    /// Submission time.
    pub at: SimTime,
    /// The submitted spec.
    pub spec: sched::JobSpec,
}

/// A pull-based stream of job arrivals in non-decreasing time order.
///
/// The cadence-invariance contract: the realised `(at, spec)` sequence
/// depends only on the source's construction (seed, trace), never on
/// how often [`WorkloadSource::pop_due`] is called or with what `now`
/// values. Implementations pre-draw exactly one arrival and consume
/// further randomness only when it is popped.
pub trait WorkloadSource {
    /// The next arrival's time, or `None` when the source is exhausted.
    /// Event-driven drivers fold this into their next-event minimum.
    fn next_at(&self) -> Option<SimTime>;

    /// Pops the next arrival if it is due at or before `now`. Loop until
    /// `None` to drain everything due.
    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob>;

    /// Drains the entire remaining stream (benchmarks and tests).
    fn drain_all(&mut self) -> Vec<WorkloadJob> {
        let mut out = Vec::new();
        while let Some(job) = self.pop_due(SimTime::MAX) {
            out.push(job);
        }
        out
    }
}
