//! Seeded synthetic workload generators, including the adversarial mixes.
//!
//! Every generator is a [`WorkloadSource`] with the `FailureProcess`
//! discipline: one arrival is pre-drawn at construction, and further
//! randomness is consumed only when an arrival is popped — so the
//! realised stream depends on the seed alone, never on query cadence.
//! Generators are finite (a job budget fixed at construction) so
//! benchmark matrices and proptest episodes terminate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resources::JobShape;
use sched::{JobClass, JobSpec};
use simcore::{SimDuration, SimTime};

use crate::{WorkloadJob, WorkloadSource};

/// Exponential gap with the given mean, drawn from `rng`.
fn exp_gap(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen();
    SimDuration::from_secs_f64(-(1.0 - u).ln() * mean.as_micros() as f64 / 1e6)
}

/// The paper's own mix, scaled to the allocation: one long continuum job
/// (3.75% of nodes, matching 150-of-4000) followed by single-GPU sims
/// arriving at the campaign's ~100 jobs/min throttle cadence. This is
/// the deterministic stand-in for the WM-driven stream in benchmark
/// matrices; inside a campaign the WM itself is the paper-mix source.
#[derive(Debug)]
pub struct PaperMix {
    t: SimTime,
    remaining: u64,
    next: Option<WorkloadJob>,
    continuum_nodes: u32,
    emitted_continuum: bool,
}

impl PaperMix {
    /// `remaining` sim jobs after the leading continuum job. The seed is
    /// accepted for interface uniformity; the mix is deterministic.
    pub fn new(_seed: u64, nodes: u32, sims: u64) -> PaperMix {
        let mut p = PaperMix {
            t: SimTime::ZERO,
            remaining: sims,
            next: None,
            // 150 of 4000 nodes, rounded up so small rungs still host it.
            continuum_nodes: (nodes * 3).div_ceil(80).max(1),
            emitted_continuum: false,
        };
        p.next = p.draw();
        p
    }

    fn draw(&mut self) -> Option<WorkloadJob> {
        if !self.emitted_continuum {
            self.emitted_continuum = true;
            return Some(WorkloadJob {
                at: SimTime::ZERO,
                spec: JobSpec::new(
                    JobClass::Continuum,
                    JobShape::continuum(self.continuum_nodes),
                    SimDuration::from_hours(200),
                ),
            });
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // ~100 jobs/min: one submission every 600 ms.
        self.t += SimDuration::from_millis(600);
        Some(WorkloadJob {
            at: self.t,
            spec: JobSpec::new(
                JobClass::CgSim,
                JobShape::sim(3),
                SimDuration::from_hours(24),
            ),
        })
    }
}

impl WorkloadSource for PaperMix {
    fn next_at(&self) -> Option<SimTime> {
        self.next.as_ref().map(|j| j.at)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob> {
        if self.next.as_ref().is_some_and(|j| j.at <= now) {
            let out = self.next.take();
            self.next = self.draw();
            out
        } else {
            None
        }
    }
}

/// Wide-starves-narrow: periodic wide CPU jobs (a quarter of the
/// machine each) interleaved with a stream of narrow single-GPU sims.
/// Under strict FCFS a wide head that does not fit stalls every narrow
/// job behind it; backfill policies should keep the narrow stream
/// flowing — this mix is what separates them.
#[derive(Debug)]
pub struct WideStarvesNarrow {
    rng: StdRng,
    t: SimTime,
    idx: u64,
    remaining: u64,
    wide_nodes: u32,
    next: Option<WorkloadJob>,
}

impl WideStarvesNarrow {
    /// Every 8th arrival is wide (`nodes/4` nodes, min 2); the rest are
    /// standard sims. `count` total arrivals.
    pub fn new(seed: u64, nodes: u32, count: u64) -> WideStarvesNarrow {
        let mut g = WideStarvesNarrow {
            rng: StdRng::seed_from_u64(seed),
            t: SimTime::ZERO,
            idx: 0,
            remaining: count,
            wide_nodes: (nodes / 4).max(2),
            next: None,
        };
        g.next = g.draw();
        g
    }

    fn draw(&mut self) -> Option<WorkloadJob> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += exp_gap(&mut self.rng, SimDuration::from_secs(30));
        let spec = if self.idx % 8 == 7 {
            JobSpec::new(
                JobClass::Other,
                JobShape::continuum(self.wide_nodes),
                SimDuration::from_mins(self.rng.gen_range(60..180)),
            )
        } else {
            JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(self.rng.gen_range(20..40)),
            )
        };
        self.idx += 1;
        Some(WorkloadJob { at: self.t, spec })
    }
}

impl WorkloadSource for WideStarvesNarrow {
    fn next_at(&self) -> Option<SimTime> {
        self.next.as_ref().map(|j| j.at)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob> {
        if self.next.as_ref().is_some_and(|j| j.at <= now) {
            let out = self.next.take();
            self.next = self.draw();
            out
        } else {
            None
        }
    }
}

/// Bursty Poisson-burst arrivals: long exponential gaps between bursts,
/// then a volley of sims landing 100 ms apart. The queue manager's
/// ingest server (the paper's Q bottleneck) sees its worst case here.
#[derive(Debug)]
pub struct BurstyPoisson {
    rng: StdRng,
    t: SimTime,
    remaining: u64,
    burst_left: u32,
    next: Option<WorkloadJob>,
}

impl BurstyPoisson {
    /// `count` total arrivals in bursts of 4–40 jobs, bursts arriving as
    /// a Poisson process with a 10-minute mean gap.
    pub fn new(seed: u64, _nodes: u32, count: u64) -> BurstyPoisson {
        let mut g = BurstyPoisson {
            rng: StdRng::seed_from_u64(seed),
            t: SimTime::ZERO,
            remaining: count,
            burst_left: 0,
            next: None,
        };
        g.next = g.draw();
        g
    }

    fn draw(&mut self) -> Option<WorkloadJob> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.burst_left == 0 {
            self.t += exp_gap(&mut self.rng, SimDuration::from_mins(10));
            self.burst_left = self.rng.gen_range(4..40);
        } else {
            self.t += SimDuration::from_millis(100);
        }
        self.burst_left -= 1;
        Some(WorkloadJob {
            at: self.t,
            spec: JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(self.rng.gen_range(10..30)),
            ),
        })
    }
}

impl WorkloadSource for BurstyPoisson {
    fn next_at(&self) -> Option<SimTime> {
        self.next.as_ref().map(|j| j.at)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob> {
        if self.next.as_ref().is_some_and(|j| j.at <= now) {
            let out = self.next.take();
            self.next = self.draw();
            out
        } else {
            None
        }
    }
}

/// Heterogeneous node shapes: arrivals drawn from a mixed shape palette
/// (thin sims, fat sims, whole-node bundles, CPU setups, small
/// multi-node continuum slabs) — the fragmentation stress for placement
/// policies and partitioned hierarchies.
#[derive(Debug)]
pub struct HeteroShapes {
    rng: StdRng,
    t: SimTime,
    remaining: u64,
    next: Option<WorkloadJob>,
}

impl HeteroShapes {
    /// `count` arrivals with a 20-second mean exponential gap.
    pub fn new(seed: u64, _nodes: u32, count: u64) -> HeteroShapes {
        let mut g = HeteroShapes {
            rng: StdRng::seed_from_u64(seed),
            t: SimTime::ZERO,
            remaining: count,
            next: None,
        };
        g.next = g.draw();
        g
    }

    fn draw(&mut self) -> Option<WorkloadJob> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += exp_gap(&mut self.rng, SimDuration::from_secs(20));
        let (class, shape) = match self.rng.gen_range(0..10u32) {
            0..=3 => (JobClass::CgSim, JobShape::sim_standard()),
            4..=5 => (JobClass::AaSim, JobShape::sim(4)),
            6..=7 => (JobClass::CgSetup, JobShape::setup()),
            8 => (JobClass::AaSim, JobShape::sim_bundled(6, 7)),
            _ => (JobClass::Other, JobShape::continuum(2)),
        };
        Some(WorkloadJob {
            at: self.t,
            spec: JobSpec::new(
                class,
                shape,
                SimDuration::from_mins(self.rng.gen_range(15..60)),
            ),
        })
    }
}

impl WorkloadSource for HeteroShapes {
    fn next_at(&self) -> Option<SimTime> {
        self.next.as_ref().map(|j| j.at)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob> {
        if self.next.as_ref().is_some_and(|j| j.at <= now) {
            let out = self.next.take();
            self.next = self.draw();
            out
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(seed: u64) -> Vec<(&'static str, Box<dyn WorkloadSource>)> {
        vec![
            ("paper-mix", Box::new(PaperMix::new(seed, 72, 50))),
            (
                "wide-starves-narrow",
                Box::new(WideStarvesNarrow::new(seed, 72, 50)),
            ),
            ("bursty", Box::new(BurstyPoisson::new(seed, 72, 50))),
            ("hetero", Box::new(HeteroShapes::new(seed, 72, 50))),
        ]
    }

    #[test]
    fn generators_are_seed_stable() {
        for ((name, mut a), (_, mut b)) in sources(7).into_iter().zip(sources(7)) {
            assert_eq!(a.drain_all(), b.drain_all(), "{name} not seed-stable");
        }
        // Different seeds move the stochastic mixes.
        for ((name, mut a), (_, mut b)) in sources(7).into_iter().zip(sources(8)) {
            let (ja, jb) = (a.drain_all(), b.drain_all());
            if name == "paper-mix" {
                assert_eq!(ja, jb, "paper-mix is deterministic by design");
            } else {
                assert_ne!(ja, jb, "{name} ignored its seed");
            }
        }
    }

    #[test]
    fn generators_are_cadence_invariant() {
        for ((name, mut bulk), (_, mut stepped)) in sources(42).into_iter().zip(sources(42)) {
            let all = bulk.drain_all();
            assert!(
                all.len() == 50 || all.len() == 51,
                "{name} wrong count {}",
                all.len()
            );
            let mut out = Vec::new();
            let mut t = SimTime::ZERO;
            // Irregular polling cadence, including over-asking.
            let mut step = 1u64;
            while out.len() < all.len() {
                while let Some(j) = stepped.pop_due(t) {
                    out.push(j);
                }
                t += SimDuration::from_secs(step);
                step = step % 97 + 13;
            }
            assert_eq!(out, all, "{name} stream depends on query cadence");
        }
    }

    #[test]
    fn streams_are_time_ordered_and_finite() {
        for (name, mut src) in sources(3) {
            let jobs = src.drain_all();
            assert!(!jobs.is_empty(), "{name} empty");
            for w in jobs.windows(2) {
                assert!(w[0].at <= w[1].at, "{name} went backwards");
            }
            assert_eq!(src.next_at(), None, "{name} not exhausted");
            assert!(src.pop_due(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn adversarial_mixes_have_their_shape() {
        let wide = WideStarvesNarrow::new(1, 72, 80).drain_all();
        assert!(
            wide.iter().any(|j| j.spec.shape.nodes >= 18),
            "no wide jobs in wide-starves-narrow"
        );
        assert!(
            wide.iter().filter(|j| j.spec.shape.nodes == 1).count() > 60,
            "narrow stream missing"
        );
        let bursty = BurstyPoisson::new(1, 72, 80).drain_all();
        let tight_gaps = bursty
            .windows(2)
            .filter(|w| w[1].at.since(w[0].at) <= SimDuration::from_millis(100))
            .count();
        assert!(
            tight_gaps > 40,
            "bursts not bursty: {tight_gaps} tight gaps"
        );
        let hetero = HeteroShapes::new(1, 72, 80).drain_all();
        let distinct: std::collections::BTreeSet<(u32, u32, u32)> = hetero
            .iter()
            .map(|j| {
                (
                    j.spec.shape.nodes,
                    j.spec.shape.cores_per_node,
                    j.spec.shape.gpus_per_node,
                )
            })
            .collect();
        assert!(
            distinct.len() >= 4,
            "hetero palette collapsed: {distinct:?}"
        );
    }
}
