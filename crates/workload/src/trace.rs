//! External trace replay: CSV / JSONL arrival–shape–duration records.
//!
//! The record format is one job per line, alibaba-trace style:
//!
//! ```text
//! at_us,class,nodes,cores,gpus,affinity,runtime_us,outcome
//! 0,continuum,2,24,0,cores,86400000000,ok
//! 600000,cg-sim,1,3,1,gpu,3600000000,ok
//! ```
//!
//! or the same fields as flat JSONL objects:
//!
//! ```text
//! {"at_us":0,"class":"cg-sim","nodes":1,"cores":3,"gpus":1,"affinity":"gpu","runtime_us":3600000000,"outcome":"ok"}
//! ```
//!
//! `class` ∈ the [`JobClass`] labels, `affinity` ∈ `none|gpu|cores`,
//! `outcome` ∈ `ok|fail`. Arrivals must be non-decreasing. Malformed
//! lines are typed [`TraceError`]s with pinned messages — a workload is
//! an input boundary, and silent coercion there is how a benchmark lies.

use resources::{Affinity, JobShape};
use sched::{JobClass, JobOutcome, JobSpec, SchedEvent, SchedLog};
use simcore::{SimDuration, SimTime};

use crate::{WorkloadJob, WorkloadSource};

/// The CSV header line (written by [`TraceFile::to_csv`], skipped on
/// parse).
pub const CSV_HEADER: &str = "at_us,class,nodes,cores,gpus,affinity,runtime_us,outcome";

/// A typed trace-parse failure. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Wrong number of CSV fields.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A field failed to parse.
    Field {
        /// 1-based line number.
        line: usize,
        /// Which field.
        field: &'static str,
        /// The offending text.
        value: String,
    },
    /// A JSONL line is not a flat object of the expected shape.
    Json {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// Arrival times went backwards.
    Order {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Arity { line, got } => {
                write!(f, "trace line {line}: expected 8 fields, got {got}")
            }
            TraceError::Field { line, field, value } => {
                write!(f, "trace line {line}: bad {field} '{value}'")
            }
            TraceError::Json { line, detail } => {
                write!(f, "trace line {line}: malformed json: {detail}")
            }
            TraceError::Order { line } => {
                write!(f, "trace line {line}: arrivals must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed trace: job arrivals in non-decreasing time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFile {
    jobs: Vec<WorkloadJob>,
}

impl TraceFile {
    /// The parsed arrivals.
    pub fn jobs(&self) -> &[WorkloadJob] {
        &self.jobs
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Builds a trace from a recorded scheduler log's submissions
    /// (cancels and node failures are out-of-band control, not
    /// workload). This is the record half of the §4.4 record → replay
    /// loop: run a campaign with recording on, convert its log, and the
    /// replayed trace drives a fresh engine to identical placements.
    pub fn from_sched_log(log: &SchedLog) -> TraceFile {
        let jobs = log
            .events()
            .iter()
            .filter_map(|ev| match ev {
                SchedEvent::Submit { at, spec } => Some(WorkloadJob {
                    at: *at,
                    spec: spec.clone(),
                }),
                _ => None,
            })
            .collect();
        TraceFile { jobs }
    }

    /// Parses either format, sniffing JSONL by a leading `{`.
    pub fn parse(text: &str) -> Result<TraceFile, TraceError> {
        let first = text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'));
        match first {
            Some(l) if l.starts_with('{') => TraceFile::parse_jsonl(text),
            _ => TraceFile::parse_csv(text),
        }
    }

    /// Parses the CSV form. Empty lines, `#` comments, and the header
    /// line are skipped.
    pub fn parse_csv(text: &str) -> Result<TraceFile, TraceError> {
        let mut jobs: Vec<WorkloadJob> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') || l == CSV_HEADER {
                continue;
            }
            let parts: Vec<&str> = l.split(',').collect();
            if parts.len() != 8 {
                return Err(TraceError::Arity {
                    line,
                    got: parts.len(),
                });
            }
            let job = build_job(
                line, parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], parts[6],
                parts[7],
            )?;
            push_ordered(&mut jobs, job, line)?;
        }
        Ok(TraceFile { jobs })
    }

    /// Parses the JSONL form: one flat object per line with exactly the
    /// CSV fields as keys. Empty lines and `#` comments are skipped.
    pub fn parse_jsonl(text: &str) -> Result<TraceFile, TraceError> {
        let mut jobs: Vec<WorkloadJob> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let pairs = parse_flat_object(l).map_err(|detail| TraceError::Json { line, detail })?;
            let field = |name: &'static str| -> Result<&str, TraceError> {
                pairs
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.as_str())
                    .ok_or(TraceError::Json {
                        line,
                        detail: format!("missing key '{name}'"),
                    })
            };
            let job = build_job(
                line,
                field("at_us")?,
                field("class")?,
                field("nodes")?,
                field("cores")?,
                field("gpus")?,
                field("affinity")?,
                field("runtime_us")?,
                field("outcome")?,
            )?;
            push_ordered(&mut jobs, job, line)?;
        }
        Ok(TraceFile { jobs })
    }

    /// Serializes to the CSV form (header + one line per job).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for job in &self.jobs {
            let aff = match job.spec.shape.affinity {
                Affinity::None => "none",
                Affinity::PackNearGpu => "gpu",
                Affinity::PackCores => "cores",
            };
            let outcome = match job.spec.outcome {
                JobOutcome::Success => "ok",
                JobOutcome::Failure => "fail",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{aff},{},{outcome}\n",
                job.at.as_micros(),
                job.spec.class.label(),
                job.spec.shape.nodes,
                job.spec.shape.cores_per_node,
                job.spec.shape.gpus_per_node,
                job.spec.runtime.as_micros(),
            ));
        }
        out
    }

    /// Consumes the trace into a replaying [`WorkloadSource`].
    pub fn into_replayer(self) -> TraceReplayer {
        TraceReplayer {
            jobs: self.jobs.into_iter(),
            peeked: None,
        }
    }
}

fn push_ordered(
    jobs: &mut Vec<WorkloadJob>,
    job: WorkloadJob,
    line: usize,
) -> Result<(), TraceError> {
    if jobs.last().is_some_and(|prev| prev.at > job.at) {
        return Err(TraceError::Order { line });
    }
    jobs.push(job);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn build_job(
    line: usize,
    at: &str,
    class: &str,
    nodes: &str,
    cores: &str,
    gpus: &str,
    affinity: &str,
    runtime: &str,
    outcome: &str,
) -> Result<WorkloadJob, TraceError> {
    let bad = |field: &'static str, value: &str| TraceError::Field {
        line,
        field,
        value: value.to_string(),
    };
    let at_us: u64 = at.parse().map_err(|_| bad("at_us", at))?;
    let class = JobClass::from_label(class).ok_or_else(|| bad("class", class))?;
    let shape = JobShape {
        nodes: nodes.parse().map_err(|_| bad("nodes", nodes))?,
        cores_per_node: cores.parse().map_err(|_| bad("cores", cores))?,
        gpus_per_node: gpus.parse().map_err(|_| bad("gpus", gpus))?,
        affinity: match affinity {
            "none" => Affinity::None,
            "gpu" => Affinity::PackNearGpu,
            "cores" => Affinity::PackCores,
            other => return Err(bad("affinity", other)),
        },
    };
    let runtime_us: u64 = runtime.parse().map_err(|_| bad("runtime_us", runtime))?;
    let mut spec = JobSpec::new(class, shape, SimDuration::from_micros(runtime_us));
    match outcome {
        "ok" => {}
        "fail" => spec = spec.failing(),
        other => return Err(bad("outcome", other)),
    }
    Ok(WorkloadJob {
        at: SimTime::from_micros(at_us),
        spec,
    })
}

/// Parses one flat JSON object into (key, value-as-text) pairs. Values
/// may be unsigned integers or plain strings; nothing nests.
fn parse_flat_object(l: &str) -> Result<Vec<(String, String)>, String> {
    let inner = l
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not an object".to_string())?;
    let mut pairs = Vec::new();
    // Split on top-level commas (strings in this format never contain
    // commas or escapes, but track quotes anyway so a bad input fails
    // loudly instead of mis-splitting).
    let mut depth_in_string = false;
    let mut start = 0usize;
    let bytes = inner.as_bytes();
    let mut fields: Vec<&str> = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => depth_in_string = !depth_in_string,
            b',' if !depth_in_string => {
                fields.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth_in_string {
        return Err("unterminated string".to_string());
    }
    if !inner.trim().is_empty() {
        fields.push(&inner[start..]);
    }
    for field in fields {
        let (k, v) = field
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in '{}'", field.trim()))?;
        let k = k.trim();
        let k = k
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key '{k}'"))?;
        let v = v.trim();
        let v = v
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(v);
        pairs.push((k.to_string(), v.to_string()));
    }
    Ok(pairs)
}

/// Replays a [`TraceFile`] as a [`WorkloadSource`].
#[derive(Debug)]
pub struct TraceReplayer {
    jobs: std::vec::IntoIter<WorkloadJob>,
    peeked: Option<WorkloadJob>,
}

impl TraceReplayer {
    fn peek(&mut self) -> Option<&WorkloadJob> {
        if self.peeked.is_none() {
            self.peeked = self.jobs.next();
        }
        self.peeked.as_ref()
    }
}

impl WorkloadSource for TraceReplayer {
    fn next_at(&self) -> Option<SimTime> {
        // `peeked` is filled by pop_due's peek; before the first pop the
        // iterator itself holds the head.
        self.peeked
            .as_ref()
            .map(|j| j.at)
            .or_else(|| self.jobs.as_slice().first().map(|j| j.at))
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WorkloadJob> {
        if self.peek().is_some_and(|j| j.at <= now) {
            self.peeked.take()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_CSV: &str = "\
at_us,class,nodes,cores,gpus,affinity,runtime_us,outcome
0,continuum,2,24,0,cores,86400000000,ok
600000,cg-sim,1,3,1,gpu,3600000000,ok
# a comment
1200000,cg-setup,1,24,0,cores,300000000,fail
";

    #[test]
    fn csv_parses_and_roundtrips() {
        let t = TraceFile::parse_csv(SAMPLE_CSV).expect("parses");
        assert_eq!(t.len(), 3);
        assert_eq!(t.jobs()[0].spec.class, JobClass::Continuum);
        assert_eq!(t.jobs()[1].at, SimTime::from_micros(600_000));
        assert_eq!(t.jobs()[2].spec.outcome, JobOutcome::Failure);
        let csv = t.to_csv();
        let again = TraceFile::parse_csv(&csv).expect("reparses");
        assert_eq!(again, t);
    }

    #[test]
    fn jsonl_parses_same_jobs_as_csv() {
        let jsonl = r#"
{"at_us":0,"class":"continuum","nodes":2,"cores":24,"gpus":0,"affinity":"cores","runtime_us":86400000000,"outcome":"ok"}
{"at_us":600000,"class":"cg-sim","nodes":1,"cores":3,"gpus":1,"affinity":"gpu","runtime_us":3600000000,"outcome":"ok"}
{"at_us":1200000,"class":"cg-setup","nodes":1,"cores":24,"gpus":0,"affinity":"cores","runtime_us":300000000,"outcome":"fail"}
"#;
        let a = TraceFile::parse_jsonl(jsonl).expect("parses");
        let b = TraceFile::parse_csv(SAMPLE_CSV).expect("parses");
        assert_eq!(a, b);
        // Auto-detection picks the right parser for both.
        assert_eq!(TraceFile::parse(jsonl).expect("auto"), a);
        assert_eq!(TraceFile::parse(SAMPLE_CSV).expect("auto"), b);
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_pinned_messages() {
        let cases: &[(&str, &str)] = &[
            (
                "0,cg-sim,1,3,1,gpu,100",
                "trace line 1: expected 8 fields, got 7",
            ),
            (
                "0,warp-drive,1,3,1,gpu,100,ok",
                "trace line 1: bad class 'warp-drive'",
            ),
            (
                "0,cg-sim,1,3,1,sideways,100,ok",
                "trace line 1: bad affinity 'sideways'",
            ),
            (
                "0,cg-sim,1,3,1,gpu,100,maybe",
                "trace line 1: bad outcome 'maybe'",
            ),
            (
                "zero,cg-sim,1,3,1,gpu,100,ok",
                "trace line 1: bad at_us 'zero'",
            ),
            (
                "5,cg-sim,1,3,1,gpu,100,ok\n1,cg-sim,1,3,1,gpu,100,ok",
                "trace line 2: arrivals must be non-decreasing",
            ),
        ];
        for (text, msg) in cases {
            let err = TraceFile::parse_csv(text).expect_err("must fail");
            assert_eq!(err.to_string(), *msg, "for input {text:?}");
        }
        let jerr = TraceFile::parse_jsonl("{\"at_us\":0}").expect_err("must fail");
        assert_eq!(
            jerr.to_string(),
            "trace line 1: malformed json: missing key 'class'"
        );
        let jerr = TraceFile::parse_jsonl("[1,2]").expect_err("must fail");
        assert_eq!(
            jerr.to_string(),
            "trace line 1: malformed json: not an object"
        );
    }

    #[test]
    fn replayer_is_cadence_invariant() {
        let t = TraceFile::parse_csv(SAMPLE_CSV).expect("parses");
        let bulk = t.clone().into_replayer().drain_all();
        assert_eq!(bulk.len(), 3);
        let mut stepped = t.into_replayer();
        let mut out = Vec::new();
        for us in [0u64, 100, 600_000, 600_001, 2_000_000] {
            while let Some(j) = stepped.pop_due(SimTime::from_micros(us)) {
                out.push(j);
            }
        }
        assert_eq!(out, bulk);
        assert_eq!(stepped.next_at(), None);
    }

    #[test]
    fn sched_log_submissions_convert() {
        let mut log = SchedLog::new();
        log.record_submit(
            SimTime::from_secs(1),
            &JobSpec::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(10),
            ),
        );
        log.record_cancel(sched::JobId(0));
        log.record_fail_node(SimTime::from_secs(2), 1);
        let t = TraceFile::from_sched_log(&log);
        assert_eq!(t.len(), 1); // control events are not workload
        assert_eq!(t.jobs()[0].at, SimTime::from_secs(1));
    }
}
