//! The cloneable workload description configs and wire protocols carry.

use crate::synth::{BurstyPoisson, HeteroShapes, PaperMix, WideStarvesNarrow};
use crate::trace::{TraceError, TraceFile};
use crate::WorkloadSource;

/// A workload selection, parseable from a CLI/wire string. Sources are
/// built per run via [`WorkloadSpec::build`]; inside a campaign the
/// `paper-mix` value means "the WM-driven stream itself" and the
/// campaign submits its own jobs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The paper's continuum + throttled-sims mix (the default).
    #[default]
    PaperMix,
    /// Periodic wide CPU jobs starving a narrow sim stream.
    WideStarvesNarrow,
    /// Poisson bursts of sims.
    Bursty,
    /// Heterogeneous shape palette.
    Hetero,
    /// Replay an external CSV/JSONL trace from this path.
    Trace(String),
}

impl WorkloadSpec {
    /// The synthetic mixes, in matrix order (trace workloads are
    /// file-specific and enumerated by the caller).
    pub const SYNTHETIC: [WorkloadSpec; 4] = [
        WorkloadSpec::PaperMix,
        WorkloadSpec::WideStarvesNarrow,
        WorkloadSpec::Bursty,
        WorkloadSpec::Hetero,
    ];

    /// Stable wire/CLI name (`trace:<path>` for traces).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::PaperMix => "paper-mix".to_string(),
            WorkloadSpec::WideStarvesNarrow => "wide-starves-narrow".to_string(),
            WorkloadSpec::Bursty => "bursty".to_string(),
            WorkloadSpec::Hetero => "hetero".to_string(),
            WorkloadSpec::Trace(path) => format!("trace:{path}"),
        }
    }

    /// Parses a wire/CLI name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<WorkloadSpec> {
        if let Some(path) = s.strip_prefix("trace:") {
            if path.is_empty() {
                return None;
            }
            return Some(WorkloadSpec::Trace(path.to_string()));
        }
        WorkloadSpec::SYNTHETIC.into_iter().find(|w| w.name() == s)
    }

    /// Builds the source: `seed` feeds the generators' RNG, `nodes` is
    /// the target allocation width (wide-job sizing), `count` the job
    /// budget for synthetic mixes. Trace workloads read their file here;
    /// parse failures surface as the trace's own typed error and I/O
    /// failures as a synthetic `Field` error naming the path.
    pub fn build(
        &self,
        seed: u64,
        nodes: u32,
        count: u64,
    ) -> Result<Box<dyn WorkloadSource>, TraceError> {
        Ok(match self {
            WorkloadSpec::PaperMix => Box::new(PaperMix::new(seed, nodes, count)),
            WorkloadSpec::WideStarvesNarrow => Box::new(WideStarvesNarrow::new(seed, nodes, count)),
            WorkloadSpec::Bursty => Box::new(BurstyPoisson::new(seed, nodes, count)),
            WorkloadSpec::Hetero => Box::new(HeteroShapes::new(seed, nodes, count)),
            WorkloadSpec::Trace(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| TraceError::Field {
                    line: 0,
                    field: "trace file",
                    value: format!("{path}: {e}"),
                })?;
                Box::new(TraceFile::parse(&text)?.into_replayer())
            }
        })
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in WorkloadSpec::SYNTHETIC {
            assert_eq!(WorkloadSpec::parse(&w.name()), Some(w));
        }
        assert_eq!(
            WorkloadSpec::parse("trace:/tmp/t.csv"),
            Some(WorkloadSpec::Trace("/tmp/t.csv".to_string()))
        );
        assert_eq!(WorkloadSpec::parse("trace:"), None);
        assert_eq!(WorkloadSpec::parse("flat-earth"), None);
        assert_eq!(WorkloadSpec::default(), WorkloadSpec::PaperMix);
    }

    #[test]
    fn build_produces_jobs_for_every_synthetic() {
        for w in WorkloadSpec::SYNTHETIC {
            let mut src = w.build(9, 72, 10).expect("builds");
            assert!(!src.drain_all().is_empty(), "{w} produced nothing");
        }
        let missing = WorkloadSpec::Trace("/nonexistent/x.csv".to_string());
        assert!(missing.build(9, 72, 10).is_err());
    }
}
