//! Property tests for the two determinism-bearing primitives: the event
//! queue's FIFO tie-breaking and the seed-stream derivation.

use proptest::prelude::*;
use rand::RngCore;
use simcore::{EventQueue, SeedStream, SimTime};

proptest! {
    /// Popping must deliver events in exactly the order of a *stable*
    /// sort by timestamp: time-ordered, with insertion order breaking
    /// ties. This is the property that makes event replay bit-exact.
    fn event_queue_pop_is_a_stable_sort_by_time(
        times in proptest::collection::vec(0u64..40, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at.as_micros(), idx));
        }
        prop_assert_eq!(popped, expected);
    }

    /// The queue clock never runs backwards, even when callers schedule
    /// events in the past (they are clamped to `now`).
    fn event_queue_clock_is_monotone(
        times in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let mut q = EventQueue::new();
        // Interleave scheduling and popping to exercise clamping.
        let mut last = SimTime::ZERO;
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
            if i % 3 == 0 {
                if let Some((at, _)) = q.pop() {
                    prop_assert!(at >= last, "clock ran backwards");
                    last = at;
                }
            }
        }
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "clock ran backwards in drain");
            last = at;
        }
    }

    /// Same root seed + same component name => bit-identical streams.
    fn seed_stream_same_name_is_identical(
        seed in 0u64..u64::MAX,
        name in "[a-z]{1,12}",
    ) {
        let s = SeedStream::new(seed);
        prop_assert_eq!(s.seed_for(&name), s.seed_for(&name));
        let mut a = s.rng(&name);
        let mut b = s.rng(&name);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Distinct component names => distinct sub-seeds and visibly
    /// distinct streams — adding a consumer of randomness in one module
    /// must not perturb any other module.
    fn seed_stream_distinct_names_are_independent(
        seed in 0u64..u64::MAX,
        name_a in "[a-z]{1,10}",
        name_b in "[A-Z]{1,10}",
    ) {
        // The character classes are disjoint, so the names always differ.
        let s = SeedStream::new(seed);
        prop_assert_ne!(s.seed_for(&name_a), s.seed_for(&name_b));
        let draws = |name: &str| -> Vec<u64> {
            let mut rng = s.rng(name);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        prop_assert_ne!(draws(&name_a), draws(&name_b));
    }

    /// Indexed streams (one per job) are pairwise independent and stable.
    fn seed_stream_indexed_streams_differ(
        seed in 0u64..u64::MAX,
        idx_a in 0u64..10_000,
        offset in 1u64..10_000,
    ) {
        let s = SeedStream::new(seed);
        let idx_b = idx_a + offset;
        prop_assert_ne!(
            s.seed_for_indexed("jobs", idx_a),
            s.seed_for_indexed("jobs", idx_b)
        );
        prop_assert_eq!(
            s.seed_for_indexed("jobs", idx_a),
            s.seed_for_indexed("jobs", idx_a)
        );
    }
}
