//! Deterministic event queue.
//!
//! The queue is generic over the event payload so each simulation defines its
//! own event enum and drives the loop itself:
//!
//! ```
//! use simcore::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Done }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_micros(10), Ev::Tick);
//! q.schedule(SimTime::from_micros(20), Ev::Done);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_micros(), ev), (10, Ev::Tick));
//! ```
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A time-ordered, FIFO-tie-broken event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so time never runs backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, self.seq)),
            event,
        });
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let Reverse((t, _)) = entry.key;
        self.now = t;
        self.popped += 1;
        Some((t, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Runs the loop until the queue is empty or `horizon` is passed,
    /// delivering each event to `handler`. The handler may schedule more
    /// events. Returns the number of events delivered.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut count = 0;
        while let Some(t) = self.peek_time() {
            if t > horizon {
                break;
            }
            let (t, ev) = self.pop().expect("peeked entry must pop");
            // Handler gets the queue back so it can schedule follow-ups.
            handler(self, t, ev);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "late");
        q.pop();
        q.schedule(SimTime::from_micros(1), "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, SimTime::from_micros(100));
    }

    #[test]
    fn run_until_respects_horizon_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut seen = Vec::new();
        let n = q.run_until(SimTime::from_micros(5), |q, t, ev| {
            seen.push(ev);
            if ev < 10 {
                q.schedule(t + SimDuration::from_micros(1), ev + 1);
            }
        });
        // Events at t=1..=5 fire; the one scheduled for t=6 stays queued.
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn delivered_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..7u8 {
            q.schedule(SimTime::from_micros(i as u64), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 7);
    }
}
