//! Virtual time for discrete-event simulation.
//!
//! Time is kept in integer microseconds so that event ordering is exact and
//! platform-independent. A three-month campaign (the paper's Dec 2020–Mar 2021
//! run) is ~7.9e12 µs, comfortably inside `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from whole minutes since simulation start.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Builds an instant from whole hours since simulation start.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// Builds an instant from fractional seconds, clamping at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hours since simulation start, as a float (for reporting only).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating below zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in minutes as a float (for reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration in hours as a float (for reporting only).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative float, saturating on overflow.
    pub fn mul_f64(self, k: f64) -> Self {
        if k <= 0.0 || !k.is_finite() {
            return SimDuration(0);
        }
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(v.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        *self = *self - d;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1.0 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.2}s")
        } else if s < 7200.0 {
            write!(f, "{:.2}min", s / 60.0)
        } else {
            write!(f, "{:.2}h", s / 3600.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(1_500_000);
        let d = SimDuration::from_secs(2);
        assert_eq!((t + d).as_micros(), 3_500_000);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimTime::from_micros(10);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn from_secs_f64_handles_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(30)), "30.00min");
        assert_eq!(format!("{}", SimDuration::from_hours(24)), "24.00h");
    }
}
