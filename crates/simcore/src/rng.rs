//! Reproducible named RNG streams.
//!
//! Every stochastic component of a campaign (job runtimes, failure injection,
//! sampler tie-breaking, …) draws from its own stream, derived from a single
//! campaign seed and a component name. This mirrors the paper's requirement
//! that key components "maintain elaborate history files that may be replayed
//! exactly": with per-component streams, adding a consumer of randomness in
//! one module does not perturb any other module.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNGs from a root seed plus a name.
#[derive(Debug, Clone, Copy)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream family rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream { root: seed }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the `u64` sub-seed for a component name.
    pub fn seed_for(&self, name: &str) -> u64 {
        let mut h = self.root ^ 0x9e37_79b9_7f4a_7c15;
        for &b in name.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        splitmix64(h)
    }

    /// Derives a sub-seed for a (name, index) pair, e.g. per-job streams.
    pub fn seed_for_indexed(&self, name: &str, index: u64) -> u64 {
        splitmix64(self.seed_for(name) ^ splitmix64(index.wrapping_add(1)))
    }

    /// Builds an [`StdRng`] for a component name.
    pub fn rng(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(name))
    }

    /// Builds an [`StdRng`] for a (name, index) pair.
    pub fn rng_indexed(&self, name: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_indexed(name, index))
    }

    /// Forks a child stream family, e.g. one per campaign run.
    pub fn fork(&self, name: &str) -> SeedStream {
        SeedStream {
            root: self.seed_for(name),
        }
    }

    /// Forks a child family for a `(name, index)` pair.
    ///
    /// The label is composed as `{name}-{index}`, so this derives exactly
    /// the same family as the historical `fork(&format!("{name}-{i}"))`
    /// call sites — existing seed streams (and therefore traces) are
    /// byte-identical. Indexed forks keep the L9 label-literal lint
    /// satisfiable: callers pass a literal `name` and the run index
    /// separately instead of formatting a dynamic label.
    pub fn fork_indexed(&self, name: &str, index: u64) -> SeedStream {
        self.fork(&format!("{name}-{index}")) // lint: allow(L9: fork_indexed composes the label; uniqueness is checked at its call sites)
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_seed() {
        let s = SeedStream::new(7);
        assert_eq!(s.seed_for("jobs"), s.seed_for("jobs"));
        assert_eq!(s.seed_for_indexed("jobs", 3), s.seed_for_indexed("jobs", 3));
    }

    #[test]
    fn different_names_differ() {
        let s = SeedStream::new(7);
        assert_ne!(s.seed_for("jobs"), s.seed_for("failures"));
        assert_ne!(s.seed_for_indexed("j", 0), s.seed_for_indexed("j", 1));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedStream::new(1).seed_for("x"),
            SeedStream::new(2).seed_for("x")
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let s = SeedStream::new(42);
        let a: Vec<u32> = s
            .rng("m")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        let b: Vec<u32> = s
            .rng("m")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fork_creates_distinct_family() {
        let s = SeedStream::new(42);
        let f = s.fork("run-1");
        assert_ne!(f.seed_for("jobs"), s.seed_for("jobs"));
        assert_eq!(f.seed_for("jobs"), s.fork("run-1").seed_for("jobs"));
    }

    #[test]
    fn fork_indexed_matches_legacy_formatted_labels() {
        // Seed-compatibility contract: fork_indexed("run", i) must derive
        // the same family the old fork(&format!("run-{i}")) sites did.
        let s = SeedStream::new(42);
        assert_eq!(s.fork_indexed("run", 3).root(), s.fork("run-3").root());
        assert_eq!(s.fork_indexed("run", 0).root(), s.fork("run-0").root());
    }

    #[test]
    fn splitmix_is_a_permutation_on_samples() {
        // Distinct inputs must not collide on a modest sample.
        let mut outs: Vec<u64> = (0..10_000).map(splitmix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
