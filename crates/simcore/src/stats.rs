//! Descriptive statistics and histograms for emitting figure series.

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean; 0 for an empty sample.
    pub mean: f64,
    /// Population standard deviation; 0 for fewer than two samples.
    pub std: f64,
    /// Minimum; +inf for an empty sample.
    pub min: f64,
    /// Maximum; -inf for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics in one pass.
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample using linear
/// interpolation between order statistics. Returns `NaN` on an empty sample.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The median of a sample.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// A fixed-width histogram over `[lo, hi)` with values clamped into range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation; out-of-range values clamp to the edge bins.
    pub fn add(&mut self, v: f64) {
        let bins = self.counts.len();
        let idx = if v <= self.lo {
            0
        } else if v >= self.hi {
            bins - 1
        } else {
            (((v - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds every observation in `values`.
    pub fn add_all(&mut self, values: &[f64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of mass in bins whose center is ≥ `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = (0..self.counts.len())
            .filter(|&i| self.bin_center(i) >= threshold)
            .map(|i| self.counts[i])
            .sum();
        n as f64 / self.total as f64
    }

    /// Renders `(bin_center, count)` rows for figure output.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Draws a compact ASCII bar chart, `width` characters at the tallest bin.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!(
                "{:>10.3} | {:<8} {}\n",
                self.bin_center(i),
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(median(&v), 25.0);
        assert!((quantile(&v, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.5, 1.5, 9.5, -3.0, 42.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -3.0
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 2); // 9.5 and clamped 42.0
    }

    #[test]
    fn histogram_fraction_at_least() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for v in 0..100 {
            h.add(v as f64 + 0.5);
        }
        let f = h.fraction_at_least(90.0);
        assert!((f - 0.10).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn histogram_rows_cover_all_bins() {
        let h = Histogram::new(0.0, 1.0, 4);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].0 - 0.125).abs() < 1e-12);
        assert!((rows[3].0 - 0.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
