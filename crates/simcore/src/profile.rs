//! Occupancy profiling and job timelines.
//!
//! MuMMI's profiling mechanism "gathers the number of running and pending
//! jobs every few minutes (for most of this campaign, profiling frequency was
//! 10 min)" and derives resource occupancy from the per-job resource shapes.
//! [`OccupancyProfiler`] is that collector; [`Timeline`] records the
//! running/pending counts per job class that Figure 6 plots.

use crate::stats::{median, Histogram, Summary};
use crate::time::SimTime;

/// One profile event: instantaneous resource usage at a sample time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySample {
    /// When the sample was taken.
    pub at: SimTime,
    /// GPUs currently allocated to jobs.
    pub gpus_used: u64,
    /// Total GPUs in the resource set.
    pub gpus_total: u64,
    /// CPU cores currently allocated to jobs.
    pub cpus_used: u64,
    /// Total CPU cores in the resource set.
    pub cpus_total: u64,
}

impl OccupancySample {
    /// GPU occupancy in percent (0 when the resource set is empty).
    pub fn gpu_pct(&self) -> f64 {
        pct(self.gpus_used, self.gpus_total)
    }

    /// CPU occupancy in percent (0 when the resource set is empty).
    pub fn cpu_pct(&self) -> f64 {
        pct(self.cpus_used, self.cpus_total)
    }
}

fn pct(used: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * used as f64 / total as f64
    }
}

/// Collects occupancy samples across one or more runs and aggregates them
/// into the Figure 5 distribution.
#[derive(Debug, Clone, Default)]
pub struct OccupancyProfiler {
    samples: Vec<OccupancySample>,
}

impl OccupancyProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one profile event.
    pub fn record(&mut self, sample: OccupancySample) {
        self.samples.push(sample);
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[OccupancySample] {
        &self.samples
    }

    /// Merges samples from another profiler (e.g. across campaign runs).
    pub fn merge(&mut self, other: &OccupancyProfiler) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// GPU occupancy percentages per profile event.
    pub fn gpu_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.gpu_pct()).collect()
    }

    /// CPU occupancy percentages per profile event.
    pub fn cpu_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cpu_pct()).collect()
    }

    /// Fraction of profile events with GPU occupancy ≥ `threshold_pct`.
    ///
    /// The paper's headline: "98% of all available GPUs were allocated for
    /// more than 83% of the total time (captured as profile events)".
    pub fn fraction_gpu_at_least(&self, threshold_pct: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self
            .samples
            .iter()
            .filter(|s| s.gpu_pct() >= threshold_pct)
            .count();
        n as f64 / self.samples.len() as f64
    }

    /// (mean, median) GPU occupancy in percent.
    pub fn gpu_mean_median(&self) -> (f64, f64) {
        let series = self.gpu_series();
        (Summary::of(&series).mean, median(&series))
    }

    /// (mean, median) CPU occupancy in percent.
    pub fn cpu_mean_median(&self) -> (f64, f64) {
        let series = self.cpu_series();
        (Summary::of(&series).mean, median(&series))
    }

    /// Builds the Figure 5 histogram (percent of profile events per
    /// occupancy bin) for the GPU or CPU series.
    pub fn histogram(&self, cpu: bool, bins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, 100.0 + 1e-9, bins);
        let series = if cpu {
            self.cpu_series()
        } else {
            self.gpu_series()
        };
        h.add_all(&series);
        h
    }
}

/// One point on a job-count timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Sample time.
    pub at: SimTime,
    /// Jobs currently running.
    pub running: u64,
    /// Jobs submitted but not yet placed.
    pub pending: u64,
}

/// Running/pending job counts over time for one job class (Figure 6).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    points: Vec<TimelinePoint>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn record(&mut self, at: SimTime, running: u64, pending: u64) {
        self.points.push(TimelinePoint {
            at,
            running,
            pending,
        });
    }

    /// All samples in record order.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// Appends another timeline's samples (e.g. across workflow-manager
    /// incarnations within one run).
    pub fn merge(&mut self, other: &Timeline) {
        self.points.extend_from_slice(&other.points);
    }

    /// Time at which the running count first reached `target`, if ever.
    pub fn time_to_reach(&self, target: u64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|p| p.running >= target)
            .map(|p| p.at)
    }

    /// Peak running count.
    pub fn peak_running(&self) -> u64 {
        self.points.iter().map(|p| p.running).max().unwrap_or(0)
    }

    /// Longest gap (in samples) during which the running count did not
    /// increase while pending jobs existed — the "large chunks followed by
    /// large periods of inactivity" signature of the 4000-node run.
    pub fn longest_stall(&self) -> usize {
        let mut longest = 0;
        let mut current = 0;
        let mut prev_running = None;
        for p in &self.points {
            let stalled = p.pending > 0 && prev_running.is_some_and(|r| p.running <= r);
            if stalled {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
            prev_running = Some(p.running);
        }
        longest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_s: u64, gu: u64, gt: u64, cu: u64, ct: u64) -> OccupancySample {
        OccupancySample {
            at: SimTime::from_micros(at_s * 1_000_000),
            gpus_used: gu,
            gpus_total: gt,
            cpus_used: cu,
            cpus_total: ct,
        }
    }

    #[test]
    fn percentages_computed() {
        let s = sample(0, 59, 60, 22, 44);
        assert!((s.gpu_pct() - 98.333).abs() < 1e-2);
        assert!((s.cpu_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_resource_set_is_zero_occupancy() {
        let s = sample(0, 0, 0, 0, 0);
        assert_eq!(s.gpu_pct(), 0.0);
        assert_eq!(s.cpu_pct(), 0.0);
    }

    #[test]
    fn fraction_gpu_at_least_matches_headline_shape() {
        let mut p = OccupancyProfiler::new();
        // 9 of 10 events at full GPU occupancy, one at half.
        for i in 0..9 {
            p.record(sample(i, 600, 600, 100, 200));
        }
        p.record(sample(9, 300, 600, 100, 200));
        assert!((p.fraction_gpu_at_least(98.0) - 0.9).abs() < 1e-12);
        let (mean, med) = p.gpu_mean_median();
        assert!(mean < med, "one bad event pulls the mean below the median");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = OccupancyProfiler::new();
        a.record(sample(0, 1, 2, 1, 2));
        let mut b = OccupancyProfiler::new();
        b.record(sample(1, 2, 2, 2, 2));
        a.merge(&b);
        assert_eq!(a.samples().len(), 2);
    }

    #[test]
    fn timeline_time_to_reach_and_peak() {
        let mut t = Timeline::new();
        t.record(SimTime::from_micros(0), 0, 100);
        t.record(SimTime::from_micros(10), 50, 50);
        t.record(SimTime::from_micros(20), 100, 0);
        assert_eq!(t.time_to_reach(100), Some(SimTime::from_micros(20)));
        assert_eq!(t.time_to_reach(1000), None);
        assert_eq!(t.peak_running(), 100);
    }

    #[test]
    fn longest_stall_detects_chunky_scheduling() {
        let mut smooth = Timeline::new();
        let mut chunky = Timeline::new();
        for i in 0..20u64 {
            smooth.record(SimTime::from_micros(i), i * 10, 200 - i * 10);
            // Chunky: running jumps only every 5th sample.
            let r = (i / 5) * 50;
            chunky.record(SimTime::from_micros(i), r, 200u64.saturating_sub(r));
        }
        assert!(chunky.longest_stall() > smooth.longest_stall());
        assert_eq!(smooth.longest_stall(), 0);
    }
}
