//! Discrete-event simulation kernel and measurement utilities.
//!
//! The at-scale evaluation of the MuMMI paper (Table 1, Figures 3–8) was run on
//! Summit. This crate provides the substrate that lets the same coordination
//! logic run in *virtual time* on a laptop:
//!
//! - [`time`] — a microsecond-resolution virtual clock ([`SimTime`],
//!   [`SimDuration`]) with total ordering and saturating arithmetic;
//! - [`event`] — a deterministic event queue ([`EventQueue`]) with
//!   FIFO tie-breaking for simultaneous events;
//! - [`rng`] — reproducible named RNG streams ([`SeedStream`]) so every
//!   stochastic component of a campaign is independently seeded;
//! - [`stats`] — descriptive statistics and histograms used to emit the
//!   figure series;
//! - [`profile`] — the occupancy profiler and job-timeline recorder that
//!   mirror MuMMI's 10-minute profiling events (Figures 5 and 6).

pub mod event;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use profile::{OccupancyProfiler, OccupancySample, Timeline, TimelinePoint};
pub use rng::SeedStream;
pub use stats::{Histogram, Summary};
pub use time::{SimDuration, SimTime};
