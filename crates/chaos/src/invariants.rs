//! Campaign-level accounting invariants.
//!
//! After a run completes under a fault plan, the driver folds every
//! workflow-manager incarnation's counters into one [`RunLedger`] and
//! [`RunLedger::check`]s it. The invariants are conservation laws: every
//! submitted job must end up in exactly one terminal bucket (or be
//! accounted as live / lost to a crash), on both the scheduler's side and
//! the trackers' side, and the two sides must reconcile exactly.

/// Aggregated job accounting for one campaign run, summed across every
/// workflow-manager incarnation (a WM crash point ends one incarnation and
/// starts the next).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunLedger {
    /// Scheduler: submissions accepted.
    pub submitted: u64,
    /// Scheduler: jobs placed on resources.
    pub placed: u64,
    /// Scheduler: successful completions.
    pub completed: u64,
    /// Scheduler: failures (job faults and node-crash victims).
    pub failed: u64,
    /// Scheduler: cancellations (the WM timeout path).
    pub canceled: u64,
    /// Scheduler: jobs still live (running + pending) at the end of the run.
    pub live_end: u64,
    /// Scheduler: jobs that were live when a WM crash discarded the
    /// engine (the allocation died with the WM).
    pub lost_in_crash: u64,
    /// Failure events the scheduler had produced but not yet delivered
    /// when a crash point hit (counted in `failed`, never seen by a
    /// tracker).
    pub undelivered_failed: u64,

    /// Trackers: submissions (includes resubmissions).
    pub t_submitted: u64,
    /// Trackers: successful completions observed.
    pub t_completed: u64,
    /// Trackers: failure events observed.
    pub t_failed: u64,
    /// Trackers: jobs canceled by the WM timeout path.
    pub t_timed_out: u64,
    /// Trackers: jobs still live at the end of the run.
    pub t_live_end: u64,
    /// Trackers: live entries dropped when a WM crash discarded the
    /// incarnation.
    pub t_lost_in_crash: u64,

    /// Continuum jobs the driver submitted outside the trackers (one per
    /// WM incarnation).
    pub continuum_submitted: u64,
    /// Continuum jobs crashed by node failures (counted in `failed` but
    /// invisible to the trackers, which never owned them).
    pub continuum_failed: u64,

    /// Background-workload jobs the driver submitted outside the trackers
    /// (trace replays and adversarial synthetic mixes).
    pub background_submitted: u64,
    /// Background jobs that completed successfully (counted in
    /// `completed`, invisible to the trackers).
    pub background_completed: u64,
    /// Background jobs that failed — job faults or node-crash victims
    /// (counted in `failed`, invisible to the trackers).
    pub background_failed: u64,

    /// Lifetime counters observed to decrease during the run (must be 0).
    pub monotonic_violations: u64,
}

impl RunLedger {
    /// Checks every invariant; returns one message per violation (empty
    /// means the ledger reconciles).
    pub fn check(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut ck = |ok: bool, msg: String| {
            if !ok {
                out.push(msg);
            }
        };
        let sched_accounted =
            self.completed + self.failed + self.canceled + self.live_end + self.lost_in_crash;
        ck(
            self.submitted == sched_accounted,
            format!(
                "scheduler conservation: submitted {} != completed {} + failed {} + canceled {} \
                 + live {} + lost-in-crash {}",
                self.submitted,
                self.completed,
                self.failed,
                self.canceled,
                self.live_end,
                self.lost_in_crash
            ),
        );
        let tracker_accounted = self.t_completed
            + self.t_failed
            + self.t_timed_out
            + self.t_live_end
            + self.t_lost_in_crash;
        ck(
            self.t_submitted == tracker_accounted,
            format!(
                "tracker conservation: submitted {} != completed {} + failed {} + timed-out {} \
                 + live {} + lost-in-crash {}",
                self.t_submitted,
                self.t_completed,
                self.t_failed,
                self.t_timed_out,
                self.t_live_end,
                self.t_lost_in_crash
            ),
        );
        ck(
            self.submitted
                == self.t_submitted + self.continuum_submitted + self.background_submitted,
            format!(
                "submission reconciliation: scheduler saw {} but trackers submitted {} \
                 + {} continuum + {} background",
                self.submitted,
                self.t_submitted,
                self.continuum_submitted,
                self.background_submitted
            ),
        );
        ck(
            self.failed
                == self.t_failed
                    + self.undelivered_failed
                    + self.continuum_failed
                    + self.background_failed,
            format!(
                "failure reconciliation: scheduler counted {} but trackers observed {} \
                 (+ {} undelivered at crash, + {} continuum, + {} background)",
                self.failed,
                self.t_failed,
                self.undelivered_failed,
                self.continuum_failed,
                self.background_failed
            ),
        );
        ck(
            self.canceled == self.t_timed_out,
            format!(
                "cancel reconciliation: scheduler canceled {} but trackers timed out {}",
                self.canceled, self.t_timed_out
            ),
        );
        ck(
            self.placed <= self.submitted,
            format!(
                "placement bound: placed {} > submitted {}",
                self.placed, self.submitted
            ),
        );
        ck(
            self.t_completed + self.background_completed <= self.completed
                && self.completed - self.t_completed - self.background_completed
                    <= self.continuum_submitted,
            format!(
                "completion reconciliation: scheduler completed {} vs trackers {} \
                 + background {} ({} continuum submitted)",
                self.completed,
                self.t_completed,
                self.background_completed,
                self.continuum_submitted
            ),
        );
        ck(
            self.background_completed + self.background_failed <= self.background_submitted,
            format!(
                "background bound: completed {} + failed {} > submitted {}",
                self.background_completed, self.background_failed, self.background_submitted
            ),
        );
        ck(
            self.monotonic_violations == 0,
            format!(
                "{} lifetime counters observed to decrease",
                self.monotonic_violations
            ),
        );
        out
    }
}

/// Watches a vector of lifetime counters across observations and counts
/// any step where a counter decreases. Counter meaning is up to the
/// caller; only positions matter.
#[derive(Debug, Clone, Default)]
pub struct MonotonicWatch {
    prev: Vec<u64>,
    violations: u64,
}

impl MonotonicWatch {
    /// A fresh watch with no history.
    pub fn new() -> MonotonicWatch {
        MonotonicWatch::default()
    }

    /// Feeds one observation; each position must be >= its previous value.
    /// A changed vector length resets the baseline (new counter set).
    pub fn observe(&mut self, counters: &[u64]) {
        if self.prev.len() == counters.len() {
            self.violations += self
                .prev
                .iter()
                .zip(counters)
                .filter(|(p, c)| c < p)
                .count() as u64;
        }
        self.prev = counters.to_vec();
    }

    /// Re-baselines without checking (used across WM incarnations, where
    /// scheduler counters legitimately restart from zero).
    pub fn reset(&mut self) {
        self.prev.clear();
    }

    /// Total decreases observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> RunLedger {
        RunLedger {
            submitted: 100,
            placed: 90,
            completed: 60,
            failed: 10,
            canceled: 5,
            live_end: 20,
            lost_in_crash: 5,
            undelivered_failed: 2,
            t_submitted: 95,
            t_completed: 57,
            t_failed: 7,
            t_timed_out: 5,
            t_live_end: 19,
            t_lost_in_crash: 7,
            continuum_submitted: 3,
            continuum_failed: 0,
            background_submitted: 2,
            background_completed: 1,
            background_failed: 1,
            monotonic_violations: 0,
        }
    }

    #[test]
    fn balanced_ledger_passes() {
        let v = balanced().check();
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn lost_job_is_flagged() {
        let mut l = balanced();
        l.completed -= 1; // one job vanished from the books
        let v = l.check();
        assert!(!v.is_empty());
        assert!(v[0].contains("scheduler conservation"));
    }

    #[test]
    fn double_counted_failure_is_flagged() {
        let mut l = balanced();
        l.failed += 1;
        l.live_end -= 1; // sched books balance, but trackers disagree
        let v = l.check();
        assert!(v.iter().any(|m| m.contains("failure reconciliation")));
    }

    #[test]
    fn monotonic_watch_counts_decreases() {
        let mut w = MonotonicWatch::new();
        w.observe(&[1, 2, 3]);
        w.observe(&[2, 2, 3]);
        assert_eq!(w.violations(), 0);
        w.observe(&[1, 2, 4]); // first counter rewound
        assert_eq!(w.violations(), 1);
        w.reset();
        w.observe(&[0, 0, 0]); // re-baselined: not a violation
        assert_eq!(w.violations(), 1);
    }
}
