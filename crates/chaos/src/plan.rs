//! Seeded, serializable fault plans.

use datastore::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::JobClass;
use simcore::{SeedStream, SimDuration, SimTime};

/// One typed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A compute node fails: the scheduler drains it and every resident
    /// job crashes (resubmitted by the trackers).
    NodeFail {
        /// Node index within the allocation (applied modulo its size).
        node: u32,
    },
    /// A datastore fault window opens: for `duration`, every `period`-th
    /// call of `op` fails with an injected error, and every call of `op`
    /// is slowed by `extra_latency` (virtual I/O degradation).
    StoreFaults {
        /// The targeted operation.
        op: Op,
        /// Fail every `period`-th targeted call inside the window
        /// (0 = latency only, no failures).
        period: u64,
        /// Window length.
        duration: SimDuration,
        /// Virtual latency added to each targeted call in the window.
        extra_latency: SimDuration,
    },
    /// The lowest-id running job of `class` hangs: it holds its resources
    /// but never completes, until the WM timeout path cancels and
    /// resubmits it.
    JobHang {
        /// Which job class to hang.
        class: JobClass,
    },
    /// The workflow manager crashes mid-run: checkpoint state survives,
    /// everything else (live jobs, selectors, trackers) is lost, and a
    /// fresh WM restores from the checkpoint and continues.
    WmCrash,
}

impl FaultKind {
    /// Stable tag used in the text serialization and in chaos trace
    /// events.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::NodeFail { .. } => "fail-node",
            FaultKind::StoreFaults { .. } => "store",
            FaultKind::JobHang { .. } => "hang",
            FaultKind::WmCrash => "crash",
        }
    }
}

/// One scheduled fault: a kind stamped at a virtual time (relative to the
/// start of the run the plan is applied to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// How many faults of each type [`FaultPlan::generate`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Node failures.
    pub node_fails: usize,
    /// Datastore fault windows.
    pub store_windows: usize,
    /// Job hangs.
    pub hangs: usize,
    /// WM crash points.
    pub crashes: usize,
}

impl Default for PlanShape {
    fn default() -> Self {
        PlanShape {
            node_fails: 2,
            store_windows: 1,
            hangs: 2,
            crashes: 1,
        }
    }
}

/// A typed error from [`FaultPlan::from_text`], carrying the offending
/// line (1-based) and its content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The text does not start with a `plan <seed>` header.
    MissingHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The raw line.
        content: String,
        /// What was wrong.
        reason: String,
    },
    /// The trailing `end <count>` line is missing (truncated file).
    MissingFooter,
    /// The footer count disagrees with the events actually present.
    CountMismatch {
        /// Events the footer promised.
        expected: usize,
        /// Events actually parsed.
        actual: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingHeader => write!(f, "fault plan missing `plan <seed>` header"),
            PlanError::BadLine {
                line,
                content,
                reason,
            } => write!(f, "fault plan line {line}: {reason}: `{content}`"),
            PlanError::MissingFooter => {
                write!(f, "fault plan missing `end <count>` footer (truncated?)")
            }
            PlanError::CountMismatch { expected, actual } => write!(
                f,
                "fault plan footer promised {expected} events, found {actual}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A seeded, serializable schedule of typed faults, applied by the
/// campaign driver to one run's virtual timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (recorded so a plan names its
    /// own reproduction recipe).
    pub seed: u64,
    /// Faults in application order (non-decreasing `at`).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sorts events by time, keeping same-time events in insertion order
    /// so application order is well-defined.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Generates a random plan over `[0, horizon)` for an allocation of
    /// `nodes` nodes. Same `(seed, horizon, nodes, shape)` always yields
    /// the same plan.
    pub fn generate(seed: u64, horizon: SimDuration, nodes: u32, shape: PlanShape) -> FaultPlan {
        let seeds = SeedStream::new(seed).fork("fault-plan");
        let mut rng = StdRng::seed_from_u64(seeds.seed_for("events"));
        let horizon_us = horizon.as_micros().max(1);
        // Keep faults away from the very start and very end of the run so
        // every fault lands on a warmed-up campaign.
        let at = |rng: &mut StdRng| {
            SimTime::from_micros(rng.gen_range(horizon_us / 10..horizon_us * 9 / 10))
        };
        let mut events = Vec::new();
        for _ in 0..shape.node_fails {
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::NodeFail {
                    node: rng.gen_range(0..nodes.max(1)),
                },
            });
        }
        for _ in 0..shape.store_windows {
            let ops = [Op::Write, Op::Read, Op::MoveNs, Op::Delete, Op::Flush];
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::StoreFaults {
                    op: ops[rng.gen_range(0..ops.len())],
                    period: rng.gen_range(2..5),
                    duration: SimDuration::from_micros(horizon_us / 10),
                    extra_latency: SimDuration::from_millis(rng.gen_range(1..50)),
                },
            });
        }
        for _ in 0..shape.hangs {
            let classes = [JobClass::CgSim, JobClass::AaSim];
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::JobHang {
                    class: classes[rng.gen_range(0..classes.len())],
                },
            });
        }
        for _ in 0..shape.crashes {
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::WmCrash,
            });
        }
        let mut plan = FaultPlan { seed, events };
        plan.normalize();
        plan
    }

    /// The CI smoke plan: one fault of each of the four types inside
    /// `horizon`, with seed-varied parameters. Small enough to run in
    /// seconds, broad enough to cross every recovery path.
    pub fn smoke(seed: u64, horizon: SimDuration, nodes: u32) -> FaultPlan {
        let seeds = SeedStream::new(seed).fork("fault-plan-smoke");
        let mut rng = StdRng::seed_from_u64(seeds.seed_for("params"));
        let h = horizon.as_micros().max(100);
        let events = vec![
            FaultEvent {
                at: SimTime::from_micros(h / 4),
                kind: FaultKind::NodeFail {
                    node: rng.gen_range(0..nodes.max(1)),
                },
            },
            FaultEvent {
                at: SimTime::from_micros(h * 35 / 100),
                kind: FaultKind::StoreFaults {
                    op: Op::Read,
                    period: rng.gen_range(2..4),
                    duration: SimDuration::from_micros(h / 8),
                    extra_latency: SimDuration::from_millis(5),
                },
            },
            FaultEvent {
                at: SimTime::from_micros(h * 55 / 100),
                kind: FaultKind::JobHang {
                    class: JobClass::CgSim,
                },
            },
            FaultEvent {
                at: SimTime::from_micros(h * 7 / 10),
                kind: FaultKind::WmCrash,
            },
        ];
        FaultPlan { seed, events }
    }

    /// Serializes to a line-oriented text format with a header and a
    /// counted footer (so truncation is detectable).
    pub fn to_text(&self) -> String {
        let mut out = format!("plan {}\n", self.seed);
        for ev in &self.events {
            let t = ev.at.as_micros();
            match ev.kind {
                FaultKind::NodeFail { node } => {
                    out.push_str(&format!("fail-node {t} {node}\n"));
                }
                FaultKind::StoreFaults {
                    op,
                    period,
                    duration,
                    extra_latency,
                } => {
                    out.push_str(&format!(
                        "store {t} {} {period} {} {}\n",
                        op.label(),
                        duration.as_micros(),
                        extra_latency.as_micros(),
                    ));
                }
                FaultKind::JobHang { class } => {
                    out.push_str(&format!("hang {t} {}\n", class.label()));
                }
                FaultKind::WmCrash => {
                    out.push_str(&format!("crash {t}\n"));
                }
            }
        }
        out.push_str(&format!("end {}\n", self.events.len()));
        out
    }

    /// Parses the text format, reporting the offending line on failure.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(PlanError::MissingHeader)?;
        let seed = header
            .strip_prefix("plan ")
            .and_then(|s| s.parse().ok())
            .ok_or(PlanError::MissingHeader)?;
        let mut events = Vec::new();
        let mut footer: Option<usize> = None;
        for (idx, line) in lines {
            let bad = |reason: &str| PlanError::BadLine {
                line: idx + 1,
                content: line.to_string(),
                reason: reason.to_string(),
            };
            if footer.is_some() {
                return Err(bad("content after `end` footer"));
            }
            let mut parts = line.split(' ');
            let tag = parts.next().unwrap_or("");
            match tag {
                "end" => {
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("footer needs an event count"))?;
                    footer = Some(n);
                }
                "fail-node" | "store" | "hang" | "crash" => {
                    let at = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .map(SimTime::from_micros)
                        .ok_or_else(|| bad("missing or bad timestamp"))?;
                    let kind = match tag {
                        "fail-node" => FaultKind::NodeFail {
                            node: parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| bad("missing or bad node index"))?,
                        },
                        "store" => {
                            let op = parts
                                .next()
                                .and_then(Op::from_label)
                                .ok_or_else(|| bad("unknown datastore op"))?;
                            let period = parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| bad("missing or bad period"))?;
                            let duration = parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .map(SimDuration::from_micros)
                                .ok_or_else(|| bad("missing or bad duration"))?;
                            let extra_latency = parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .map(SimDuration::from_micros)
                                .ok_or_else(|| bad("missing or bad latency"))?;
                            FaultKind::StoreFaults {
                                op,
                                period,
                                duration,
                                extra_latency,
                            }
                        }
                        "hang" => FaultKind::JobHang {
                            class: parts
                                .next()
                                .and_then(JobClass::from_label)
                                .ok_or_else(|| bad("unknown job class"))?,
                        },
                        _ => FaultKind::WmCrash,
                    };
                    if parts.next().is_some() {
                        return Err(bad("trailing fields"));
                    }
                    events.push(FaultEvent { at, kind });
                }
                _ => return Err(bad("unknown fault tag")),
            }
        }
        let expected = footer.ok_or(PlanError::MissingFooter)?;
        if expected != events.len() {
            return Err(PlanError::CountMismatch {
                expected,
                actual: events.len(),
            });
        }
        Ok(FaultPlan { seed, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let h = SimDuration::from_hours(6);
        let a = FaultPlan::generate(42, h, 20, PlanShape::default());
        let b = FaultPlan::generate(42, h, 20, PlanShape::default());
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let c = FaultPlan::generate(43, h, 20, PlanShape::default());
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn smoke_covers_all_four_fault_types() {
        let plan = FaultPlan::smoke(7, SimDuration::from_hours(4), 10);
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::NodeFail { .. })));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::StoreFaults { .. })));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::JobHang { .. })));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WmCrash)));
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let plan = FaultPlan::generate(99, SimDuration::from_hours(12), 50, PlanShape::default());
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn truncated_plan_is_rejected() {
        let plan = FaultPlan::smoke(1, SimDuration::from_hours(2), 4);
        let text = plan.to_text();
        // Drop the footer line.
        let cut = text.lines().take(plan.events.len()).collect::<Vec<_>>();
        let err = FaultPlan::from_text(&(cut.join("\n") + "\n")).unwrap_err();
        assert_eq!(err, PlanError::MissingFooter);
        // Drop an event but keep the footer.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(2);
        match FaultPlan::from_text(&(lines.join("\n") + "\n")).unwrap_err() {
            PlanError::CountMismatch { expected, actual } => {
                assert_eq!(expected, 4);
                assert_eq!(actual, 3);
            }
            e => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn bad_lines_name_the_offender() {
        let err = FaultPlan::from_text("plan 1\nfail-node oops 3\nend 1\n").unwrap_err();
        match err {
            PlanError::BadLine { line, content, .. } => {
                assert_eq!(line, 2);
                assert!(content.contains("oops"));
            }
            e => panic!("unexpected error: {e}"),
        }
        assert!(FaultPlan::from_text("not a plan\n").is_err());
        assert!(matches!(
            FaultPlan::from_text("plan 1\nwat 5\nend 1\n").unwrap_err(),
            PlanError::BadLine { line: 2, .. }
        ));
    }

    #[test]
    fn empty_plan_roundtrips() {
        let plan = FaultPlan::empty();
        assert_eq!(FaultPlan::from_text(&plan.to_text()).unwrap(), plan);
    }
}
