//! Seeded worker-kill schedules for the campaign-farm chaos harness.
//!
//! A farm runs campaigns on a pool of worker threads; the fault mode that
//! matters at service level is *losing a worker mid-campaign* — the
//! in-memory campaign dies with it, and the farm must recover the tenant's
//! campaign from its last durable checkpoint on another worker without
//! losing or double-counting any job. A [`WorkerKillPlan`] schedules those
//! kills deterministically so a chaotic service run is replayable: kills
//! fire on the farm's *logical* progress clock (total completed campaign
//! legs across all workers), never on wall time, so the same plan against
//! the same submission set produces the same recovery history.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::SeedStream;

use crate::plan::PlanError;

/// One scheduled kill: when the farm's total completed-leg counter
/// reaches `after_legs`, worker `worker` dies at its next cooperative
/// point (between legs, or at the next whole virtual hour mid-leg).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Fire once the farm has completed this many legs in total.
    pub after_legs: u64,
    /// Victim worker index (applied modulo the pool size).
    pub worker: usize,
}

/// A seeded, serializable schedule of worker kills, ordered by trigger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerKillPlan {
    /// The seed the plan was generated from (the reproduction recipe).
    pub seed: u64,
    /// Kills in trigger order (non-decreasing `after_legs`).
    pub kills: Vec<WorkerKill>,
}

impl WorkerKillPlan {
    /// No kills.
    pub fn empty() -> WorkerKillPlan {
        WorkerKillPlan::default()
    }

    /// Sorts kills by trigger, keeping same-trigger kills in insertion
    /// order so application order is well-defined.
    pub fn normalize(&mut self) {
        self.kills.sort_by_key(|k| k.after_legs);
    }

    /// Generates `count` kills spread over a farm expected to complete
    /// about `expected_legs` legs on `workers` workers. Same arguments,
    /// same plan. Triggers land in `[1, expected_legs)` so every kill
    /// hits a farm that has made some progress but still has work left.
    pub fn generate(seed: u64, workers: usize, expected_legs: u64, count: usize) -> WorkerKillPlan {
        let seeds = SeedStream::new(seed).fork("worker-kill-plan");
        let mut rng = StdRng::seed_from_u64(seeds.seed_for("kills"));
        let hi = expected_legs.max(2);
        let mut kills = Vec::with_capacity(count);
        for _ in 0..count {
            kills.push(WorkerKill {
                after_legs: rng.gen_range(1..hi),
                worker: rng.gen_range(0..workers.max(1)),
            });
        }
        let mut plan = WorkerKillPlan { seed, kills };
        plan.normalize();
        plan
    }

    /// Kills whose trigger is at or below `legs_completed`, skipping the
    /// first `fired` entries (the caller's cursor into the sorted plan).
    /// A cursor past the end reads as an exhausted plan.
    pub fn due(&self, legs_completed: u64, fired: usize) -> &[WorkerKill] {
        let fired = fired.min(self.kills.len());
        let upto = self.kills[fired..]
            .iter()
            .take_while(|k| k.after_legs <= legs_completed)
            .count();
        &self.kills[fired..fired + upto]
    }

    /// Serializes to the chaos crate's line format: a `kill-plan <seed>`
    /// header, one `kill <after_legs> <worker>` line per entry, and a
    /// counted `end <n>` footer so truncation is detectable.
    pub fn to_text(&self) -> String {
        let mut out = format!("kill-plan {}\n", self.seed);
        for k in &self.kills {
            out.push_str(&format!("kill {} {}\n", k.after_legs, k.worker));
        }
        out.push_str(&format!("end {}\n", self.kills.len()));
        out
    }

    /// Parses the text format, reporting the offending line on failure.
    pub fn from_text(text: &str) -> Result<WorkerKillPlan, PlanError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(PlanError::MissingHeader)?;
        let seed = header
            .strip_prefix("kill-plan ")
            .and_then(|s| s.parse().ok())
            .ok_or(PlanError::MissingHeader)?;
        let mut kills = Vec::new();
        let mut footer: Option<usize> = None;
        for (idx, line) in lines {
            let bad = |reason: &str| PlanError::BadLine {
                line: idx + 1,
                content: line.to_string(),
                reason: reason.to_string(),
            };
            if footer.is_some() {
                return Err(bad("content after `end` footer"));
            }
            let mut parts = line.split(' ');
            match parts.next().unwrap_or("") {
                "end" => {
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("footer needs a kill count"))?;
                    footer = Some(n);
                }
                "kill" => {
                    let after_legs = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing or bad trigger"))?;
                    let worker = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing or bad worker index"))?;
                    if parts.next().is_some() {
                        return Err(bad("trailing fields"));
                    }
                    kills.push(WorkerKill { after_legs, worker });
                }
                _ => return Err(bad("unknown kill-plan tag")),
            }
        }
        let expected = footer.ok_or(PlanError::MissingFooter)?;
        if expected != kills.len() {
            return Err(PlanError::CountMismatch {
                expected,
                actual: kills.len(),
            });
        }
        Ok(WorkerKillPlan { seed, kills })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_sorted_and_in_range() {
        let a = WorkerKillPlan::generate(11, 4, 20, 5);
        let b = WorkerKillPlan::generate(11, 4, 20, 5);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 5);
        assert!(a
            .kills
            .windows(2)
            .all(|w| w[0].after_legs <= w[1].after_legs));
        assert!(a
            .kills
            .iter()
            .all(|k| (1..20).contains(&k.after_legs) && k.worker < 4));
        assert_ne!(a, WorkerKillPlan::generate(12, 4, 20, 5));
    }

    #[test]
    fn due_respects_cursor_and_trigger() {
        let plan = WorkerKillPlan {
            seed: 0,
            kills: vec![
                WorkerKill {
                    after_legs: 2,
                    worker: 0,
                },
                WorkerKill {
                    after_legs: 2,
                    worker: 1,
                },
                WorkerKill {
                    after_legs: 7,
                    worker: 0,
                },
            ],
        };
        assert!(plan.due(1, 0).is_empty());
        assert_eq!(plan.due(2, 0).len(), 2);
        assert_eq!(plan.due(2, 2).len(), 0, "cursor skips fired kills");
        assert_eq!(plan.due(10, 2).len(), 1);
        assert!(
            plan.due(10, 5).is_empty(),
            "past-the-end cursor is exhausted, not a panic"
        );
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let plan = WorkerKillPlan::generate(99, 8, 40, 6);
        let text = plan.to_text();
        let back = WorkerKillPlan::from_text(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_text(), text);
        let empty = WorkerKillPlan::empty();
        assert_eq!(WorkerKillPlan::from_text(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn truncated_or_bad_text_is_rejected() {
        let plan = WorkerKillPlan::generate(5, 2, 10, 3);
        let text = plan.to_text();
        let cut: Vec<&str> = text.lines().take(1 + plan.kills.len()).collect();
        assert_eq!(
            WorkerKillPlan::from_text(&(cut.join("\n") + "\n")).unwrap_err(),
            PlanError::MissingFooter
        );
        assert!(matches!(
            WorkerKillPlan::from_text("kill-plan 1\nkill x 0\nend 1\n").unwrap_err(),
            PlanError::BadLine { line: 2, .. }
        ));
        assert!(WorkerKillPlan::from_text("plan 1\nend 0\n").is_err());
    }
}
