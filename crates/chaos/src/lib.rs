//! Deterministic chaos engineering for the campaign simulator.
//!
//! The paper's robustness claim is that MuMMI "can be restored completely
//! after any such crash without much loss of data" (§4.4) while surviving
//! node failures, I/O faults, and job loss across a months-long campaign.
//! This crate turns that claim into a testable contract:
//!
//! * [`FaultPlan`] — a seeded, serializable schedule of typed faults
//!   ([`FaultKind`]) stamped at virtual times. The same plan applied to the
//!   same campaign seed must produce a byte-identical trace; fault
//!   injection is part of the determinism contract, not an exception to it.
//! * [`RunLedger`] — campaign-level accounting collected across every
//!   workflow-manager incarnation of a run. [`RunLedger::check`] asserts
//!   that no job is lost or double-counted: scheduler totals conserve,
//!   tracker totals conserve, and the two sides reconcile exactly.
//! * [`MonotonicWatch`] — a counter watchdog that flags any lifetime
//!   counter observed to decrease (restore bugs show up as counters
//!   rewinding).
//!
//! The four fault types map to the paper's §4.4 failure modes:
//!
//! | fault              | paper failure mode                               |
//! |--------------------|--------------------------------------------------|
//! | [`FaultKind::NodeFail`]   | hardware node failure, drained by Flux    |
//! | [`FaultKind::StoreFaults`]| file-system outages / I/O degradation     |
//! | [`FaultKind::JobHang`]    | hung simulations caught by WM timeouts    |
//! | [`FaultKind::WmCrash`]    | workflow-manager crash → restore from     |
//! |                           | checkpoint                                |

//!
//! Service-level chaos adds a fifth mode: [`WorkerKillPlan`] schedules
//! worker-thread deaths in the campaign farm on its logical progress
//! clock (completed legs), exercising checkpoint recovery across workers.
//! With the datastore promoted to a real server, [`StoreChaosPlan`]
//! points the fault windows at the genuine articles — TCP connections
//! severed between request and ack, and write-ahead logs with torn
//! tails — instead of in-process injected store errors.

mod invariants;
mod kill;
mod netfault;
mod plan;

pub use invariants::{MonotonicWatch, RunLedger};
pub use kill::{WorkerKill, WorkerKillPlan};
pub use netfault::{StoreChaosPlan, WalTruncation};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanError, PlanShape};
