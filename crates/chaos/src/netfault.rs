//! Seeded network/disk fault schedules for the datastore tier.
//!
//! Earlier chaos rounds injected store errors *inside* the process
//! (`FaultKind::StoreFaults`); with `storeserver` the store is a real
//! server, so the faults worth rehearsing are the real ones: a TCP
//! connection dying between request and response, and a write-ahead log
//! losing its tail to a crash mid-append. A [`StoreChaosPlan`] schedules
//! both deterministically — drops fire on the server's *logical* op
//! counter and truncations are fixed byte counts per shard log — so a
//! chaotic store run is replayable from its seed, exactly like the
//! worker-kill plans the farm uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::SeedStream;

use crate::plan::PlanError;

/// One scheduled WAL truncation: cut `bytes` off the tail of shard
/// `shard`'s log before recovery (simulating a torn final append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTruncation {
    /// Victim shard index (applied modulo the shard count).
    pub shard: usize,
    /// Bytes to cut off the log tail (clamped to the file size).
    pub bytes: u64,
}

/// A seeded, serializable schedule of store-tier faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreChaosPlan {
    /// The seed the plan was generated from (the reproduction recipe).
    pub seed: u64,
    /// Global op indices at which the serving connection is severed
    /// (after the op is applied and synced, before its ack is sent —
    /// the ambiguous window). Strictly increasing.
    pub conn_drops: Vec<u64>,
    /// Torn-tail truncations to apply to shard logs before recovery.
    pub wal_truncations: Vec<WalTruncation>,
}

impl StoreChaosPlan {
    /// No faults.
    pub fn empty() -> StoreChaosPlan {
        StoreChaosPlan::default()
    }

    /// Sorts and dedups drop points (two drops on one op index would
    /// just be one drop) and orders truncations by shard.
    pub fn normalize(&mut self) {
        self.conn_drops.sort_unstable();
        self.conn_drops.dedup();
        self.wal_truncations.sort_by_key(|t| t.shard);
    }

    /// Generates `drops` connection drops spread over a run expected to
    /// issue about `expected_ops` store ops, plus `truncations` torn
    /// tails of 1–64 bytes across `shards` shard logs. Same arguments,
    /// same plan. Drop points land in `[1, expected_ops)` so each drop
    /// hits a connection that has made progress and has work left.
    pub fn generate(
        seed: u64,
        expected_ops: u64,
        drops: usize,
        shards: usize,
        truncations: usize,
    ) -> StoreChaosPlan {
        let seeds = SeedStream::new(seed).fork("store-chaos-plan");
        let mut rng = StdRng::seed_from_u64(seeds.seed_for("net"));
        let hi = expected_ops.max(2);
        let mut conn_drops: Vec<u64> = (0..drops).map(|_| rng.gen_range(1..hi)).collect();
        let mut trunc_rng = StdRng::seed_from_u64(seeds.seed_for("disk"));
        let wal_truncations = (0..truncations)
            .map(|_| WalTruncation {
                shard: trunc_rng.gen_range(0..shards.max(1)),
                bytes: trunc_rng.gen_range(1..=64),
            })
            .collect();
        conn_drops.sort_unstable();
        conn_drops.dedup();
        let mut plan = StoreChaosPlan {
            seed,
            conn_drops,
            wal_truncations,
        };
        plan.normalize();
        plan
    }

    /// Serializes to the chaos crate's line format: a `store-chaos
    /// <seed>` header, one line per fault, and a counted `end <n>`
    /// footer so truncation of the *plan file itself* is detectable.
    pub fn to_text(&self) -> String {
        let mut out = format!("store-chaos {}\n", self.seed);
        for d in &self.conn_drops {
            out.push_str(&format!("drop {d}\n"));
        }
        for t in &self.wal_truncations {
            out.push_str(&format!("truncate {} {}\n", t.shard, t.bytes));
        }
        out.push_str(&format!(
            "end {}\n",
            self.conn_drops.len() + self.wal_truncations.len()
        ));
        out
    }

    /// Parses the text format, reporting the offending line on failure.
    pub fn from_text(text: &str) -> Result<StoreChaosPlan, PlanError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(PlanError::MissingHeader)?;
        let seed = header
            .strip_prefix("store-chaos ")
            .and_then(|s| s.parse().ok())
            .ok_or(PlanError::MissingHeader)?;
        let mut conn_drops = Vec::new();
        let mut wal_truncations = Vec::new();
        let mut footer: Option<usize> = None;
        for (idx, line) in lines {
            let bad = |reason: &str| PlanError::BadLine {
                line: idx + 1,
                content: line.to_string(),
                reason: reason.to_string(),
            };
            if footer.is_some() {
                return Err(bad("content after `end` footer"));
            }
            let mut parts = line.split(' ');
            match parts.next().unwrap_or("") {
                "end" => {
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("footer needs a fault count"))?;
                    footer = Some(n);
                }
                "drop" => {
                    let at = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing or bad op index"))?;
                    if parts.next().is_some() {
                        return Err(bad("trailing fields"));
                    }
                    conn_drops.push(at);
                }
                "truncate" => {
                    let shard = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing or bad shard index"))?;
                    let bytes = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing or bad byte count"))?;
                    if parts.next().is_some() {
                        return Err(bad("trailing fields"));
                    }
                    wal_truncations.push(WalTruncation { shard, bytes });
                }
                _ => return Err(bad("unknown store-chaos tag")),
            }
        }
        let expected = footer.ok_or(PlanError::MissingFooter)?;
        let actual = conn_drops.len() + wal_truncations.len();
        if expected != actual {
            return Err(PlanError::CountMismatch { expected, actual });
        }
        Ok(StoreChaosPlan {
            seed,
            conn_drops,
            wal_truncations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_sorted_and_in_range() {
        let a = StoreChaosPlan::generate(11, 500, 4, 8, 3);
        let b = StoreChaosPlan::generate(11, 500, 4, 8, 3);
        assert_eq!(a, b);
        assert!(a.conn_drops.len() <= 4 && !a.conn_drops.is_empty());
        assert!(a.conn_drops.windows(2).all(|w| w[0] < w[1]));
        assert!(a.conn_drops.iter().all(|&d| (1..500).contains(&d)));
        assert_eq!(a.wal_truncations.len(), 3);
        assert!(a
            .wal_truncations
            .iter()
            .all(|t| t.shard < 8 && (1..=64).contains(&t.bytes)));
        assert_ne!(a, StoreChaosPlan::generate(12, 500, 4, 8, 3));
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let plan = StoreChaosPlan::generate(99, 1000, 5, 20, 4);
        let text = plan.to_text();
        let back = StoreChaosPlan::from_text(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_text(), text);
        let empty = StoreChaosPlan::empty();
        assert_eq!(StoreChaosPlan::from_text(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn truncated_or_bad_text_is_rejected() {
        let plan = StoreChaosPlan::generate(5, 100, 3, 4, 2);
        let text = plan.to_text();
        let lines: Vec<&str> = text.lines().collect();
        let cut = lines[..lines.len() - 1].join("\n") + "\n";
        assert_eq!(
            StoreChaosPlan::from_text(&cut).unwrap_err(),
            PlanError::MissingFooter
        );
        assert!(matches!(
            StoreChaosPlan::from_text("store-chaos 1\ndrop x\nend 1\n").unwrap_err(),
            PlanError::BadLine { line: 2, .. }
        ));
        assert!(StoreChaosPlan::from_text("chaos 1\nend 0\n").is_err());
        assert!(matches!(
            StoreChaosPlan::from_text("store-chaos 1\ndrop 5\nend 2\n").unwrap_err(),
            PlanError::CountMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }
}
