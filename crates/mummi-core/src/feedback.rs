//! In-situ feedback managers (§4.4 Task 4).
//!
//! "Generically, a feedback iteration collects data from all running
//! simulations, processes it, and reports the analysis. A new abstract API,
//! the Feedback Manager was developed to allow controlling the specific
//! details." Processed frames are **moved out of the live namespace**
//! rather than tracked in memory, so iteration cost "scales only with the
//! number of ongoing simulations, and not with the total simulation frames
//! ever generated".

use aa::{consensus, AaFrame, SsClass};
use cg::analysis::CgFrame;
use continuum::CouplingParams;
use datastore::DataStore;

/// Result of one feedback iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackOutcome {
    /// Frames folded in during this iteration.
    pub processed: usize,
    /// Frames skipped because they failed to decode (left in place would
    /// wedge the loop, so they are moved out too and counted here).
    pub corrupt: usize,
}

/// The abstract feedback API: scan the live namespace, process everything
/// new, move it out, and expose an aggregated report.
pub trait FeedbackManager {
    /// The aggregated product of this feedback (coupling parameters,
    /// force-field refinements, …).
    type Report;

    /// Runs one iteration against the store.
    fn iterate(&mut self, store: &mut dyn DataStore) -> datastore::Result<FeedbackOutcome>;

    /// The current aggregate, if any data has been folded in yet.
    fn report(&self) -> Option<Self::Report>;

    /// Total frames processed over the manager's lifetime.
    fn total_processed(&self) -> u64;
}

/// CG→continuum feedback: aggregates protein–lipid RDFs from CG frames and
/// converts them into updated continuum coupling parameters.
#[derive(Debug, Clone)]
pub struct CgToContinuumFeedback {
    /// Running mean RDF per species.
    mean_rdfs: Vec<Vec<f64>>,
    count: u64,
    /// Scale from contact enrichment to coupling strength.
    strength_scale: f64,
    /// Gaussian range passed through to the continuum model.
    range: f64,
}

impl CgToContinuumFeedback {
    /// A fresh aggregator for `n_species` species.
    pub fn new(n_species: usize) -> CgToContinuumFeedback {
        CgToContinuumFeedback {
            mean_rdfs: vec![Vec::new(); n_species],
            count: 0,
            strength_scale: 0.5,
            range: 2.5,
        }
    }

    /// The running mean RDF of one species (empty before any data).
    pub fn mean_rdf(&self, species: usize) -> &[f64] {
        &self.mean_rdfs[species]
    }

    fn fold(&mut self, frame: &CgFrame) {
        self.count += 1;
        let k = self.count as f64;
        for (s, rdf) in frame.rdfs.iter().enumerate() {
            if s >= self.mean_rdfs.len() {
                break;
            }
            let mean = &mut self.mean_rdfs[s];
            if mean.is_empty() {
                *mean = rdf.clone();
            } else {
                for (m, &v) in mean.iter_mut().zip(rdf) {
                    *m += (v - *m) / k;
                }
            }
        }
    }

    /// Converts aggregated RDFs to coupling strengths: species whose
    /// contact-region g(r) exceeds 1 are enriched near the protein, so the
    /// continuum model should attract them (negative strength), and vice
    /// versa. Applied identically to both protein kinds.
    fn to_coupling(&self) -> CouplingParams {
        let n_species = self.mean_rdfs.len();
        let mut strength = vec![vec![0.0; n_species]; 2];
        for (s, rdf) in self.mean_rdfs.iter().enumerate() {
            if rdf.is_empty() {
                continue;
            }
            let contact = &rdf[..(rdf.len() / 3).max(1)];
            let g: f64 = contact.iter().sum::<f64>() / contact.len() as f64;
            let w = (-(g - 1.0) * self.strength_scale).clamp(-1.0, 1.0);
            strength[0][s] = w;
            strength[1][s] = w;
        }
        CouplingParams {
            strength,
            range: self.range,
        }
    }
}

impl FeedbackManager for CgToContinuumFeedback {
    type Report = CouplingParams;

    fn iterate(&mut self, store: &mut dyn DataStore) -> datastore::Result<FeedbackOutcome> {
        let keys = store.list(crate::ns::RDF_NEW)?;
        let mut processed = 0;
        let mut corrupt = 0;
        for key in keys {
            let bytes = store.read(crate::ns::RDF_NEW, &key)?;
            match CgFrame::decode(&key, &bytes) {
                Ok(frame) => {
                    self.fold(&frame);
                    processed += 1;
                }
                Err(_) => corrupt += 1,
            }
            // Tag as processed by moving out of the live namespace.
            store.move_ns(&key, crate::ns::RDF_NEW, crate::ns::RDF_DONE)?;
        }
        Ok(FeedbackOutcome { processed, corrupt })
    }

    fn report(&self) -> Option<CouplingParams> {
        if self.count == 0 {
            None
        } else {
            Some(self.to_coupling())
        }
    }

    fn total_processed(&self) -> u64 {
        self.count
    }
}

/// The CG force-field refinement the AA→CG feedback produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CgParams {
    /// Consensus secondary structure per residue.
    pub consensus: Vec<SsClass>,
    /// Helix fraction of the consensus.
    pub helix_fraction: f64,
    /// Multiplier for the CG protein bond stiffness (helical content makes
    /// the CG chain stiffer — "the force field parameters of the CG
    /// protein model depend on the secondary structure").
    pub bond_k_factor: f64,
}

/// AA→CG feedback: secondary-structure consensus over AA frames.
///
/// "Each frame requires longer processing: … processing each frame needs
/// two system calls to an external module, taking ∽2 s in isolation" — in
/// the DES that cost is modeled by the campaign; here the manager does the
/// actual aggregation work.
#[derive(Debug, Clone, Default)]
pub struct AaToCgFeedback {
    patterns: Vec<Vec<SsClass>>,
    count: u64,
}

impl AaToCgFeedback {
    /// A fresh aggregator.
    pub fn new() -> AaToCgFeedback {
        AaToCgFeedback::default()
    }
}

impl FeedbackManager for AaToCgFeedback {
    type Report = CgParams;

    fn iterate(&mut self, store: &mut dyn DataStore) -> datastore::Result<FeedbackOutcome> {
        let keys = store.list(crate::ns::SS_NEW)?;
        let mut processed = 0;
        let mut corrupt = 0;
        for key in keys {
            let bytes = store.read(crate::ns::SS_NEW, &key)?;
            match AaFrame::decode(&key, &bytes) {
                Ok(frame) => {
                    self.patterns.push(frame.ss);
                    self.count += 1;
                    processed += 1;
                }
                Err(_) => corrupt += 1,
            }
            store.move_ns(&key, crate::ns::SS_NEW, crate::ns::SS_DONE)?;
        }
        Ok(FeedbackOutcome { processed, corrupt })
    }

    fn report(&self) -> Option<CgParams> {
        if self.patterns.is_empty() {
            return None;
        }
        let cons = consensus(&self.patterns);
        let helix =
            cons.iter().filter(|&&c| c == SsClass::Helix).count() as f64 / cons.len().max(1) as f64;
        Some(CgParams {
            helix_fraction: helix,
            bond_k_factor: 1.0 + helix,
            consensus: cons,
        })
    }

    fn total_processed(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datastore::KvDataStore;

    fn cg_frame(id: &str, enrich: f64) -> CgFrame {
        CgFrame {
            id: id.to_string(),
            time: 1.0,
            encoding: [0.5, 0.5, 0.5],
            // Species 0 enriched at contact, species 1 depleted.
            rdfs: vec![vec![enrich; 12], vec![0.2; 12]],
        }
    }

    #[test]
    fn cg_feedback_aggregates_and_tags() {
        let mut store = KvDataStore::new(4);
        let mut fb = CgToContinuumFeedback::new(2);
        assert!(fb.report().is_none());
        for i in 0..10 {
            let f = cg_frame(&format!("s1:f{i}"), 2.0);
            store.write(crate::ns::RDF_NEW, &f.id, &f.encode()).unwrap();
        }
        let out = fb.iterate(&mut store).unwrap();
        assert_eq!(out.processed, 10);
        assert_eq!(store.count(crate::ns::RDF_NEW).unwrap(), 0);
        assert_eq!(store.count(crate::ns::RDF_DONE).unwrap(), 10);

        let params = fb.report().unwrap();
        assert!(
            params.strength[0][0] < 0.0,
            "enriched species becomes attractive: {:?}",
            params.strength
        );
        assert!(
            params.strength[0][1] > 0.0,
            "depleted species becomes repulsive"
        );
        // Second iteration with nothing new is a no-op.
        let out = fb.iterate(&mut store).unwrap();
        assert_eq!(out.processed, 0);
        assert_eq!(fb.total_processed(), 10);
    }

    #[test]
    fn cg_feedback_running_mean_converges() {
        let mut store = KvDataStore::new(2);
        let mut fb = CgToContinuumFeedback::new(2);
        for i in 0..4 {
            let f = cg_frame(&format!("a:f{i}"), 1.0);
            store.write(crate::ns::RDF_NEW, &f.id, &f.encode()).unwrap();
        }
        for i in 0..4 {
            let f = cg_frame(&format!("b:f{i}"), 3.0);
            store.write(crate::ns::RDF_NEW, &f.id, &f.encode()).unwrap();
        }
        fb.iterate(&mut store).unwrap();
        let m = fb.mean_rdf(0);
        assert!((m[0] - 2.0).abs() < 1e-9, "mean of 1.0s and 3.0s: {}", m[0]);
    }

    #[test]
    fn corrupt_frames_are_moved_out_not_wedged() {
        let mut store = KvDataStore::new(2);
        store.write(crate::ns::RDF_NEW, "bad", b"garbage").unwrap();
        let mut fb = CgToContinuumFeedback::new(2);
        let out = fb.iterate(&mut store).unwrap();
        assert_eq!(out.corrupt, 1);
        assert_eq!(out.processed, 0);
        assert_eq!(store.count(crate::ns::RDF_NEW).unwrap(), 0);
    }

    #[test]
    fn aa_feedback_builds_consensus() {
        use SsClass::*;
        let mut store = KvDataStore::new(2);
        let frames = [
            vec![Coil, Helix, Helix, Sheet],
            vec![Coil, Helix, Helix, Coil],
            vec![Helix, Helix, Coil, Coil],
        ];
        for (i, ss) in frames.iter().enumerate() {
            let f = AaFrame {
                id: format!("aa1:f{i}"),
                time: i as f64,
                ss: ss.clone(),
            };
            store.write(crate::ns::SS_NEW, &f.id, &f.encode()).unwrap();
        }
        let mut fb = AaToCgFeedback::new();
        let out = fb.iterate(&mut store).unwrap();
        assert_eq!(out.processed, 3);
        let params = fb.report().unwrap();
        assert_eq!(params.consensus, vec![Coil, Helix, Helix, Coil]);
        assert!((params.helix_fraction - 0.5).abs() < 1e-12);
        assert!((params.bond_k_factor - 1.5).abs() < 1e-12);
        assert_eq!(store.count(crate::ns::SS_DONE).unwrap(), 3);
    }

    #[test]
    fn feedback_cost_scales_with_live_frames_only() {
        // After 100 frames are processed, an iteration with 5 new frames
        // must only touch 5 keys — the namespace-move design.
        let mut store = KvDataStore::new(4);
        let mut fb = CgToContinuumFeedback::new(2);
        for i in 0..100 {
            let f = cg_frame(&format!("x:f{i}"), 1.5);
            store.write(crate::ns::RDF_NEW, &f.id, &f.encode()).unwrap();
        }
        fb.iterate(&mut store).unwrap();
        for i in 100..105 {
            let f = cg_frame(&format!("x:f{i}"), 1.5);
            store.write(crate::ns::RDF_NEW, &f.id, &f.encode()).unwrap();
        }
        let out = fb.iterate(&mut store).unwrap();
        assert_eq!(out.processed, 5);
    }
}
