//! Abstract job tracking (§4.3).
//!
//! "To support handling arbitrary types of jobs, we provide a generic and
//! abstract Job Tracker that can be customized using a combination of
//! inherited classes and configuration files." A [`JobTracker`] owns one
//! class of jobs: it submits them with the configured resource shape and
//! runtime model, maps scheduler events back to application payloads
//! (patch ids, simulation ids), and resubmits failures up to a budget.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use resources::JobShape;
use sched::{JobClass, JobEvent, JobId, JobSpec, Launcher};
use simcore::{SimDuration, SimTime};

/// Per-class tracker configuration.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Scheduler class of the jobs.
    pub class: JobClass,
    /// Resource shape of each job.
    pub shape: JobShape,
    /// Base virtual runtime.
    pub runtime: SimDuration,
    /// Uniform runtime jitter as a fraction of the base (0.2 = ±20%).
    pub runtime_jitter: f64,
    /// Probability a submitted job fails and needs resubmission.
    pub failure_prob: f64,
    /// Resubmission budget per payload; beyond it the payload is dropped.
    pub max_resubmits: u32,
}

impl TrackerConfig {
    /// A tracker for `class` with shape and runtime, no jitter/failures.
    pub fn new(class: JobClass, shape: JobShape, runtime: SimDuration) -> TrackerConfig {
        TrackerConfig {
            class,
            shape,
            runtime,
            runtime_jitter: 0.0,
            failure_prob: 0.0,
            max_resubmits: 3,
        }
    }
}

/// What a tracked job's completion means to the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tracked {
    /// The job was placed on resources.
    Started {
        /// Scheduler id.
        job: JobId,
        /// Application payload (patch/frame/simulation id).
        payload: String,
    },
    /// The job finished successfully.
    Done {
        /// Application payload.
        payload: String,
    },
    /// The job failed and was resubmitted.
    Resubmitted {
        /// Application payload.
        payload: String,
        /// Which attempt this will be (1-based).
        attempt: u32,
    },
    /// The job failed and exhausted its resubmission budget.
    Abandoned {
        /// Application payload.
        payload: String,
    },
}

/// Bookkeeping for one in-flight job: its payload plus what the tracker
/// needs to notice a hang (when it was placed and how long it should run).
#[derive(Debug, Clone)]
struct LiveJob {
    payload: String,
    /// Set when the scheduler reports placement.
    placed_at: Option<SimTime>,
    /// The virtual runtime the job was submitted with.
    runtime: SimDuration,
}

/// Tracks one class of jobs end to end.
#[derive(Debug)]
pub struct JobTracker {
    cfg: TrackerConfig,
    live: BTreeMap<JobId, LiveJob>,
    attempts: BTreeMap<String, u32>,
    submitted: u64,
    completed: u64,
    failed: u64,
    timed_out: u64,
}

impl JobTracker {
    /// Creates a tracker.
    pub fn new(cfg: TrackerConfig) -> JobTracker {
        JobTracker {
            cfg,
            live: BTreeMap::new(),
            attempts: BTreeMap::new(),
            submitted: 0,
            completed: 0,
            failed: 0,
            timed_out: 0,
        }
    }

    /// The tracker's job class.
    pub fn class(&self) -> JobClass {
        self.cfg.class
    }

    /// (submitted, completed, failed) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.submitted, self.completed, self.failed)
    }

    /// Jobs canceled by the timeout watchdog ([`JobTracker::expire_overdue`]).
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Jobs currently live (submitted or running) under this tracker.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// (running, pending) from the launcher for this class.
    pub fn counts(&self, launcher: &dyn Launcher) -> (u64, u64) {
        launcher.class_counts(self.cfg.class)
    }

    /// Submits one job for `payload` at time `at`, with the configured
    /// (jittered) runtime.
    pub fn submit(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: &str,
        at: SimTime,
        rng: &mut StdRng,
    ) -> JobId {
        let jitter = if self.cfg.runtime_jitter > 0.0 {
            1.0 + rng.gen_range(-self.cfg.runtime_jitter..self.cfg.runtime_jitter)
        } else {
            1.0
        };
        let runtime = self.cfg.runtime.mul_f64(jitter);
        self.submit_with(launcher, payload, at, runtime, rng)
    }

    /// Submits one job with an explicit runtime (per-payload runtime
    /// models, e.g. remaining-length-to-target in the campaign DES).
    pub fn submit_with(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: &str,
        at: SimTime,
        runtime: SimDuration,
        rng: &mut StdRng,
    ) -> JobId {
        let mut spec = JobSpec::new(self.cfg.class, self.cfg.shape, runtime);
        if self.cfg.failure_prob > 0.0 && rng.gen_bool(self.cfg.failure_prob) {
            spec = spec.failing();
        }
        let id = launcher.submit(spec, at);
        self.live.insert(
            id,
            LiveJob {
                payload: payload.to_string(),
                placed_at: None,
                runtime,
            },
        );
        *self.attempts.entry(payload.to_string()).or_insert(0) += 1;
        self.submitted += 1;
        id
    }

    /// The timeout watchdog: cancels placed jobs that have overstayed
    /// `grace` times their submitted runtime (a hung job never reports
    /// completion, so the scheduler alone cannot reclaim it — §4.4's
    /// "jobs may hang" failure). Canceled payloads are resubmitted under
    /// the usual budget; the returned [`Tracked`]s describe what happened.
    /// With `grace > 1` a healthy job always finishes first, so only
    /// genuinely hung jobs expire.
    pub fn expire_overdue(
        &mut self,
        launcher: &mut dyn Launcher,
        now: SimTime,
        grace: f64,
        rng: &mut StdRng,
    ) -> Vec<Tracked> {
        let overdue: Vec<JobId> = self
            .live
            .iter()
            .filter(|(_, job)| {
                job.placed_at
                    .is_some_and(|p| now.since(p) > job.runtime.mul_f64(grace))
            })
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::new();
        for id in overdue {
            launcher.cancel(id);
            let Some(job) = self.live.remove(&id) else {
                continue;
            };
            self.timed_out += 1;
            let payload = job.payload;
            let attempt = self.attempts.get(&payload).copied().unwrap_or(0);
            if attempt <= self.cfg.max_resubmits {
                self.submit(launcher, &payload, now, rng);
                out.push(Tracked::Resubmitted {
                    payload,
                    attempt: attempt + 1,
                });
            } else {
                self.attempts.remove(&payload);
                out.push(Tracked::Abandoned { payload });
            }
        }
        out
    }

    /// The earliest instant at which a currently-placed job becomes
    /// overdue under `grace` (see [`JobTracker::expire_overdue`], whose
    /// `>` comparison means expiry happens strictly *after* this instant).
    /// `None` when nothing is placed. Event-driven drivers use this as the
    /// watchdog's next deadline instead of scanning every tick.
    pub fn earliest_timeout(&self, grace: f64) -> Option<SimTime> {
        self.live
            .values()
            .filter_map(|job| job.placed_at.map(|p| p + job.runtime.mul_f64(grace)))
            .min()
    }

    /// Routes a scheduler event owned by this tracker. Returns `None` for
    /// events about other trackers' jobs. Failed jobs are resubmitted
    /// immediately (at the finish time) until the budget runs out.
    pub fn on_event(
        &mut self,
        launcher: &mut dyn Launcher,
        event: &JobEvent,
        rng: &mut StdRng,
    ) -> Option<Tracked> {
        match *event {
            JobEvent::Placed { id, at } => {
                let job = self.live.get_mut(&id)?;
                job.placed_at = Some(at);
                Some(Tracked::Started {
                    job: id,
                    payload: job.payload.clone(),
                })
            }
            JobEvent::Finished { id, at, success } => {
                let payload = self.live.remove(&id)?.payload;
                if success {
                    self.completed += 1;
                    self.attempts.remove(&payload);
                    Some(Tracked::Done { payload })
                } else {
                    self.failed += 1;
                    let attempt = self.attempts.get(&payload).copied().unwrap_or(0);
                    if attempt <= self.cfg.max_resubmits {
                        self.submit(launcher, &payload, at, rng);
                        Some(Tracked::Resubmitted {
                            payload,
                            attempt: attempt + 1,
                        })
                    } else {
                        self.attempts.remove(&payload);
                        Some(Tracked::Abandoned { payload })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
    use sched::{Costs, Coupling, SchedEngine};

    fn launcher(nodes: u32) -> SchedEngine {
        SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        )
    }

    fn sim_tracker(failure_prob: f64) -> JobTracker {
        JobTracker::new(TrackerConfig {
            failure_prob,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(10),
            )
        })
    }

    #[test]
    fn lifecycle_maps_payloads() {
        let mut l = launcher(1);
        let mut t = sim_tracker(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let id = t.submit(&mut l, "patch-42", SimTime::ZERO, &mut rng);
        let events = l.poll(SimTime::from_secs(1));
        let tracked: Vec<Tracked> = events
            .iter()
            .filter_map(|e| t.on_event(&mut l, e, &mut rng))
            .collect();
        assert_eq!(
            tracked,
            vec![Tracked::Started {
                job: id,
                payload: "patch-42".into()
            }]
        );
        let events = l.poll(SimTime::from_mins(11));
        let tracked: Vec<Tracked> = events
            .iter()
            .filter_map(|e| t.on_event(&mut l, e, &mut rng))
            .collect();
        assert_eq!(
            tracked,
            vec![Tracked::Done {
                payload: "patch-42".into()
            }]
        );
        assert_eq!(t.counters(), (1, 1, 0));
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn failures_are_resubmitted_until_budget() {
        let mut l = launcher(1);
        let mut t = JobTracker::new(TrackerConfig {
            failure_prob: 1.0, // every attempt fails
            max_resubmits: 2,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(1),
            )
        });
        let mut rng = StdRng::seed_from_u64(2);
        t.submit(&mut l, "doomed", SimTime::ZERO, &mut rng);
        let mut resubmits = 0;
        let mut abandoned = false;
        for round in 1..20 {
            let events = l.poll(SimTime::from_mins(2 * round));
            for e in &events {
                match t.on_event(&mut l, e, &mut rng) {
                    Some(Tracked::Resubmitted { attempt, .. }) => {
                        resubmits += 1;
                        assert!(attempt <= 3);
                    }
                    Some(Tracked::Abandoned { payload }) => {
                        assert_eq!(payload, "doomed");
                        abandoned = true;
                    }
                    _ => {}
                }
            }
            if abandoned {
                break;
            }
        }
        assert_eq!(resubmits, 2, "budget of 2 resubmits");
        assert!(abandoned, "payload finally abandoned");
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn hung_jobs_expire_and_resubmit() {
        let mut l = launcher(1);
        let mut t = sim_tracker(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let id = t.submit(&mut l, "patch-7", SimTime::ZERO, &mut rng);
        for e in l.poll(SimTime::from_secs(1)) {
            t.on_event(&mut l, &e, &mut rng);
        }
        l.hang_running(JobClass::CgSim, SimTime::from_mins(1));

        // Within 1.5x the 10-min runtime nothing expires.
        let none = t.expire_overdue(&mut l, SimTime::from_mins(12), 1.5, &mut rng);
        assert!(none.is_empty());
        // Past the grace window the hung job is canceled and resubmitted.
        let tracked = t.expire_overdue(&mut l, SimTime::from_mins(16), 1.5, &mut rng);
        assert_eq!(
            tracked,
            vec![Tracked::Resubmitted {
                payload: "patch-7".into(),
                attempt: 2
            }]
        );
        assert_eq!(l.state(id), Some(sched::JobState::Canceled));
        assert_eq!(t.timed_out(), 1);
        assert_eq!(t.live_count(), 1, "replacement job is live");
        // The replacement runs to completion (the node is healthy).
        for e in l.poll(SimTime::from_mins(40)) {
            t.on_event(&mut l, &e, &mut rng);
        }
        assert_eq!(t.counters(), (2, 1, 0));
    }

    #[test]
    fn perpetually_hung_payload_is_abandoned() {
        let mut l = launcher(1);
        let mut t = JobTracker::new(TrackerConfig {
            max_resubmits: 2,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(10),
            )
        });
        let mut rng = StdRng::seed_from_u64(6);
        t.submit(&mut l, "cursed", SimTime::ZERO, &mut rng);
        let mut resubmits = 0;
        let mut abandoned = false;
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += SimDuration::from_mins(1);
            for e in l.poll(now) {
                t.on_event(&mut l, &e, &mut rng);
            }
            l.hang_running(JobClass::CgSim, now);
            now += SimDuration::from_mins(30);
            for e in l.poll(now) {
                t.on_event(&mut l, &e, &mut rng);
            }
            for tracked in t.expire_overdue(&mut l, now, 1.5, &mut rng) {
                match tracked {
                    Tracked::Resubmitted { .. } => resubmits += 1,
                    Tracked::Abandoned { payload } => {
                        assert_eq!(payload, "cursed");
                        abandoned = true;
                    }
                    _ => {}
                }
            }
            if abandoned {
                break;
            }
        }
        assert_eq!(resubmits, 2, "budget of 2 resubmits");
        assert!(abandoned, "payload can never loop forever");
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.timed_out(), 3);
    }

    #[test]
    fn events_for_other_trackers_are_ignored() {
        let mut l = launcher(1);
        let mut cg = sim_tracker(0.0);
        let mut other = JobTracker::new(TrackerConfig::new(
            JobClass::AaSim,
            JobShape::sim_standard(),
            SimDuration::from_mins(5),
        ));
        let mut rng = StdRng::seed_from_u64(3);
        cg.submit(&mut l, "mine", SimTime::ZERO, &mut rng);
        let events = l.poll(SimTime::from_secs(1));
        for e in &events {
            assert!(other.on_event(&mut l, e, &mut rng).is_none());
        }
    }

    #[test]
    fn runtime_jitter_varies_finish_times() {
        let mut l = launcher(4);
        let mut t = JobTracker::new(TrackerConfig {
            runtime_jitter: 0.5,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(100),
            )
        });
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..10 {
            t.submit(&mut l, &format!("p{i}"), SimTime::ZERO, &mut rng);
        }
        l.poll(SimTime::from_secs(1));
        let events = l.poll(SimTime::from_mins(300));
        let finish_times: std::collections::HashSet<u64> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::Finished { at, .. } => Some(at.as_micros()),
                _ => None,
            })
            .collect();
        assert!(finish_times.len() > 5, "jitter should spread finish times");
    }
}
