//! Abstract job tracking (§4.3).
//!
//! "To support handling arbitrary types of jobs, we provide a generic and
//! abstract Job Tracker that can be customized using a combination of
//! inherited classes and configuration files." A [`JobTracker`] owns one
//! class of jobs: it submits them with the configured resource shape and
//! runtime model, maps scheduler events back to application payloads
//! (patch ids, simulation ids), and resubmits failures up to a budget.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use resources::JobShape;
use sched::{JobClass, JobEvent, JobId, JobSpec, Launcher};
use simcore::{SimDuration, SimTime};

/// An interned application payload (patch/frame/simulation id). One heap
/// string is allocated when a payload first enters the WM coordination
/// path; every tracker record, ready-queue entry, resubmission, and
/// [`crate::WmEvent`] after that clones the pointer, not the bytes.
pub type PayloadId = Arc<str>;

/// Per-class tracker configuration.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Scheduler class of the jobs.
    pub class: JobClass,
    /// Resource shape of each job.
    pub shape: JobShape,
    /// Base virtual runtime.
    pub runtime: SimDuration,
    /// Uniform runtime jitter as a fraction of the base (0.2 = ±20%).
    pub runtime_jitter: f64,
    /// Probability a submitted job fails and needs resubmission.
    pub failure_prob: f64,
    /// Resubmission budget per payload; beyond it the payload is dropped.
    pub max_resubmits: u32,
}

impl TrackerConfig {
    /// A tracker for `class` with shape and runtime, no jitter/failures.
    pub fn new(class: JobClass, shape: JobShape, runtime: SimDuration) -> TrackerConfig {
        TrackerConfig {
            class,
            shape,
            runtime,
            runtime_jitter: 0.0,
            failure_prob: 0.0,
            max_resubmits: 3,
        }
    }
}

/// What a tracked job's completion means to the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tracked {
    /// The job was placed on resources.
    Started {
        /// Scheduler id.
        job: JobId,
        /// Application payload (patch/frame/simulation id).
        payload: PayloadId,
    },
    /// The job finished successfully.
    Done {
        /// Application payload.
        payload: PayloadId,
    },
    /// The job failed and was resubmitted.
    Resubmitted {
        /// Application payload.
        payload: PayloadId,
        /// Which attempt this will be (1-based).
        attempt: u32,
    },
    /// The job failed and exhausted its resubmission budget.
    Abandoned {
        /// Application payload.
        payload: PayloadId,
    },
}

/// Bookkeeping for one in-flight job: its payload plus what the tracker
/// needs to notice a hang (when it was placed and how long it should run).
#[derive(Debug, Clone)]
struct LiveJob {
    payload: PayloadId,
    /// Set when the scheduler reports placement.
    placed_at: Option<SimTime>,
    /// The virtual runtime the job was submitted with.
    runtime: SimDuration,
}

/// Tracks one class of jobs end to end.
#[derive(Debug)]
pub struct JobTracker {
    cfg: TrackerConfig,
    live: BTreeMap<JobId, LiveJob>,
    attempts: BTreeMap<PayloadId, u32>,
    /// Watchdog deadlines of placed jobs, ordered `(deadline, id)` — the
    /// index behind [`JobTracker::earliest_timeout`] and
    /// [`JobTracker::expire_overdue`], replacing full-table min scans.
    /// Deadlines are `placed_at + runtime × grace`; empty while the
    /// watchdog is disabled (`timeout_grace == 0`).
    deadlines: BTreeSet<(SimTime, JobId)>,
    /// Grace factor the deadlines were computed with (see
    /// [`JobTracker::set_timeout_grace`]).
    timeout_grace: f64,
    /// Benchmarking escape hatch: answer watchdog queries with the
    /// retired full-table scans instead of the deadline index (see
    /// [`JobTracker::set_linear_scan`]). Results are identical either
    /// way; only the wall-clock cost differs.
    linear_scan: bool,
    submitted: u64,
    completed: u64,
    failed: u64,
    timed_out: u64,
}

impl JobTracker {
    /// Creates a tracker with the hang watchdog disabled.
    pub fn new(cfg: TrackerConfig) -> JobTracker {
        JobTracker {
            cfg,
            live: BTreeMap::new(),
            attempts: BTreeMap::new(),
            deadlines: BTreeSet::new(),
            timeout_grace: 0.0,
            linear_scan: false,
            submitted: 0,
            completed: 0,
            failed: 0,
            timed_out: 0,
        }
    }

    /// Sets the watchdog grace factor: a placed job is presumed hung once
    /// it overstays `grace` times its submitted runtime (`0` disables the
    /// watchdog). Rebuilds the deadline index, so changing the factor
    /// mid-run is allowed but costs O(live · log live).
    pub fn set_timeout_grace(&mut self, grace: f64) {
        self.timeout_grace = grace;
        self.deadlines.clear();
        if grace > 0.0 {
            for (&id, job) in &self.live {
                if let Some(p) = job.placed_at {
                    self.deadlines.insert((p + job.runtime.mul_f64(grace), id));
                }
            }
        }
    }

    /// The configured watchdog grace factor.
    pub fn timeout_grace(&self) -> f64 {
        self.timeout_grace
    }

    /// Switches watchdog queries back to the retired O(live) table scans
    /// — the pre-index engine, retained so the scale benchmarks can
    /// measure the index against an honest baseline. The deadline index
    /// is still maintained, so the toggle can flip at any time; answers
    /// are identical in both modes.
    pub fn set_linear_scan(&mut self, on: bool) {
        self.linear_scan = on;
    }

    /// Whether watchdog queries use the retired linear scans.
    pub fn linear_scan(&self) -> bool {
        self.linear_scan
    }

    /// The tracker's job class.
    pub fn class(&self) -> JobClass {
        self.cfg.class
    }

    /// (submitted, completed, failed) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.submitted, self.completed, self.failed)
    }

    /// Jobs canceled by the timeout watchdog ([`JobTracker::expire_overdue`]).
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Jobs currently live (submitted or running) under this tracker.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// (running, pending) from the launcher for this class.
    pub fn counts(&self, launcher: &dyn Launcher) -> (u64, u64) {
        launcher.class_counts(self.cfg.class)
    }

    /// Submits one job for `payload` at time `at`, with the configured
    /// (jittered) runtime. Interns the payload; resubmission paths use
    /// [`JobTracker::submit_interned`] to reuse the existing allocation.
    pub fn submit(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: &str,
        at: SimTime,
        rng: &mut StdRng,
    ) -> JobId {
        self.submit_interned(launcher, Arc::from(payload), at, rng)
    }

    /// [`JobTracker::submit`] with an already-interned payload.
    pub fn submit_interned(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: PayloadId,
        at: SimTime,
        rng: &mut StdRng,
    ) -> JobId {
        let jitter = if self.cfg.runtime_jitter > 0.0 {
            1.0 + rng.gen_range(-self.cfg.runtime_jitter..self.cfg.runtime_jitter)
        } else {
            1.0
        };
        let runtime = self.cfg.runtime.mul_f64(jitter);
        self.submit_interned_with(launcher, payload, at, runtime, rng)
    }

    /// Submits one job with an explicit runtime (per-payload runtime
    /// models, e.g. remaining-length-to-target in the campaign DES).
    pub fn submit_with(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: &str,
        at: SimTime,
        runtime: SimDuration,
        rng: &mut StdRng,
    ) -> JobId {
        self.submit_interned_with(launcher, Arc::from(payload), at, runtime, rng)
    }

    /// [`JobTracker::submit_with`] with an already-interned payload.
    pub fn submit_interned_with(
        &mut self,
        launcher: &mut dyn Launcher,
        payload: PayloadId,
        at: SimTime,
        runtime: SimDuration,
        rng: &mut StdRng,
    ) -> JobId {
        let mut spec = JobSpec::new(self.cfg.class, self.cfg.shape, runtime);
        if self.cfg.failure_prob > 0.0 && rng.gen_bool(self.cfg.failure_prob) {
            spec = spec.failing();
        }
        let id = launcher.submit(spec, at);
        self.live.insert(
            id,
            LiveJob {
                payload: payload.clone(),
                placed_at: None,
                runtime,
            },
        );
        *self.attempts.entry(payload).or_insert(0) += 1;
        self.submitted += 1;
        id
    }

    /// The timeout watchdog: cancels placed jobs that have overstayed the
    /// configured grace factor times their submitted runtime (a hung job
    /// never reports completion, so the scheduler alone cannot reclaim it
    /// — §4.4's "jobs may hang" failure). Canceled payloads are
    /// resubmitted under the usual budget; the returned [`Tracked`]s
    /// describe what happened. With a grace factor above 1 a healthy job
    /// always finishes first, so only genuinely hung jobs expire. No-op
    /// until [`JobTracker::set_timeout_grace`] enables the watchdog.
    ///
    /// Overdue jobs come straight off the front of the deadline index; no
    /// live-table scan happens (unless [`JobTracker::set_linear_scan`]
    /// re-enables the retired scan for benchmarking). They are processed
    /// in job-id (submission) order, exactly as the retired scanning
    /// implementation did, so resubmission order — and therefore the
    /// trace — is unchanged.
    pub fn expire_overdue(
        &mut self,
        launcher: &mut dyn Launcher,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Tracked> {
        if self.timeout_grace <= 0.0 {
            return Vec::new();
        }
        let mut overdue: Vec<JobId> = Vec::new();
        if self.linear_scan {
            // The retired full-table scan, kept as the benchmark
            // baseline. `now - placed > runtime × grace` is the same
            // predicate as `deadline < now` in integer microseconds.
            for (&id, job) in &self.live {
                if let Some(p) = job.placed_at {
                    if now.since(p) > job.runtime.mul_f64(self.timeout_grace) {
                        overdue.push(id);
                        self.deadlines
                            .remove(&(p + job.runtime.mul_f64(self.timeout_grace), id));
                    }
                }
            }
        } else {
            while let Some(&(deadline, id)) = self.deadlines.first() {
                // `>` in the retired scan (`now - placed > runtime × grace`)
                // means a job expires strictly after its deadline.
                if deadline >= now {
                    break;
                }
                self.deadlines.pop_first();
                overdue.push(id);
            }
            overdue.sort_unstable();
        }
        let mut out = Vec::new();
        for id in overdue {
            launcher.cancel(id);
            let Some(job) = self.live.remove(&id) else {
                continue;
            };
            self.timed_out += 1;
            let payload = job.payload;
            let attempt = self.attempts.get(&payload).copied().unwrap_or(0);
            if attempt <= self.cfg.max_resubmits {
                self.submit_interned(launcher, payload.clone(), now, rng);
                out.push(Tracked::Resubmitted {
                    payload,
                    attempt: attempt + 1,
                });
            } else {
                self.attempts.remove(&payload);
                out.push(Tracked::Abandoned { payload });
            }
        }
        out
    }

    /// The earliest instant at which a currently-placed job becomes
    /// overdue (see [`JobTracker::expire_overdue`], whose `>` comparison
    /// means expiry happens strictly *after* this instant). `None` when
    /// nothing is placed or the watchdog is disabled. Event-driven
    /// drivers use this as the watchdog's next deadline instead of
    /// scanning every tick; it is one ordered-set peek.
    pub fn earliest_timeout(&self) -> Option<SimTime> {
        if self.linear_scan {
            // Retired full-table min scan (benchmark baseline).
            if self.timeout_grace <= 0.0 {
                return None;
            }
            return self
                .live
                .values()
                .filter_map(|job| {
                    job.placed_at
                        .map(|p| p + job.runtime.mul_f64(self.timeout_grace))
                })
                .min();
        }
        self.deadlines.first().map(|&(deadline, _)| deadline)
    }

    /// Routes a scheduler event owned by this tracker. Returns `None` for
    /// events about other trackers' jobs. Failed jobs are resubmitted
    /// immediately (at the finish time) until the budget runs out.
    pub fn on_event(
        &mut self,
        launcher: &mut dyn Launcher,
        event: &JobEvent,
        rng: &mut StdRng,
    ) -> Option<Tracked> {
        match *event {
            JobEvent::Placed { id, at } => {
                let job = self.live.get_mut(&id)?;
                job.placed_at = Some(at);
                let payload = job.payload.clone();
                if self.timeout_grace > 0.0 {
                    let deadline = at + job.runtime.mul_f64(self.timeout_grace);
                    self.deadlines.insert((deadline, id));
                }
                Some(Tracked::Started { job: id, payload })
            }
            JobEvent::Finished { id, at, success } => {
                let job = self.live.remove(&id)?;
                if self.timeout_grace > 0.0 {
                    if let Some(p) = job.placed_at {
                        self.deadlines
                            .remove(&(p + job.runtime.mul_f64(self.timeout_grace), id));
                    }
                }
                let payload = job.payload;
                if success {
                    self.completed += 1;
                    self.attempts.remove(&payload);
                    Some(Tracked::Done { payload })
                } else {
                    self.failed += 1;
                    let attempt = self.attempts.get(&payload).copied().unwrap_or(0);
                    if attempt <= self.cfg.max_resubmits {
                        self.submit_interned(launcher, payload.clone(), at, rng);
                        Some(Tracked::Resubmitted {
                            payload,
                            attempt: attempt + 1,
                        })
                    } else {
                        self.attempts.remove(&payload);
                        Some(Tracked::Abandoned { payload })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
    use sched::{Costs, Coupling, SchedEngine};

    fn launcher(nodes: u32) -> SchedEngine {
        SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        )
    }

    fn sim_tracker(failure_prob: f64) -> JobTracker {
        JobTracker::new(TrackerConfig {
            failure_prob,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(10),
            )
        })
    }

    #[test]
    fn lifecycle_maps_payloads() {
        let mut l = launcher(1);
        let mut t = sim_tracker(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let id = t.submit(&mut l, "patch-42", SimTime::ZERO, &mut rng);
        let events = l.poll(SimTime::from_secs(1));
        let tracked: Vec<Tracked> = events
            .iter()
            .filter_map(|e| t.on_event(&mut l, e, &mut rng))
            .collect();
        assert_eq!(
            tracked,
            vec![Tracked::Started {
                job: id,
                payload: "patch-42".into()
            }]
        );
        let events = l.poll(SimTime::from_mins(11));
        let tracked: Vec<Tracked> = events
            .iter()
            .filter_map(|e| t.on_event(&mut l, e, &mut rng))
            .collect();
        assert_eq!(
            tracked,
            vec![Tracked::Done {
                payload: "patch-42".into()
            }]
        );
        assert_eq!(t.counters(), (1, 1, 0));
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn failures_are_resubmitted_until_budget() {
        let mut l = launcher(1);
        let mut t = JobTracker::new(TrackerConfig {
            failure_prob: 1.0, // every attempt fails
            max_resubmits: 2,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(1),
            )
        });
        let mut rng = StdRng::seed_from_u64(2);
        t.submit(&mut l, "doomed", SimTime::ZERO, &mut rng);
        let mut resubmits = 0;
        let mut abandoned = false;
        for round in 1..20 {
            let events = l.poll(SimTime::from_mins(2 * round));
            for e in &events {
                match t.on_event(&mut l, e, &mut rng) {
                    Some(Tracked::Resubmitted { attempt, .. }) => {
                        resubmits += 1;
                        assert!(attempt <= 3);
                    }
                    Some(Tracked::Abandoned { payload }) => {
                        assert_eq!(&*payload, "doomed");
                        abandoned = true;
                    }
                    _ => {}
                }
            }
            if abandoned {
                break;
            }
        }
        assert_eq!(resubmits, 2, "budget of 2 resubmits");
        assert!(abandoned, "payload finally abandoned");
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn hung_jobs_expire_and_resubmit() {
        let mut l = launcher(1);
        let mut t = sim_tracker(0.0);
        t.set_timeout_grace(1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let id = t.submit(&mut l, "patch-7", SimTime::ZERO, &mut rng);
        for e in l.poll(SimTime::from_secs(1)) {
            t.on_event(&mut l, &e, &mut rng);
        }
        l.hang_running(JobClass::CgSim, SimTime::from_mins(1));

        // Within 1.5x the 10-min runtime nothing expires.
        let none = t.expire_overdue(&mut l, SimTime::from_mins(12), &mut rng);
        assert!(none.is_empty());
        // Past the grace window the hung job is canceled and resubmitted.
        let tracked = t.expire_overdue(&mut l, SimTime::from_mins(16), &mut rng);
        assert_eq!(
            tracked,
            vec![Tracked::Resubmitted {
                payload: "patch-7".into(),
                attempt: 2
            }]
        );
        assert_eq!(l.state(id), Some(sched::JobState::Canceled));
        assert_eq!(t.timed_out(), 1);
        assert_eq!(t.live_count(), 1, "replacement job is live");
        // The replacement runs to completion (the node is healthy).
        for e in l.poll(SimTime::from_mins(40)) {
            t.on_event(&mut l, &e, &mut rng);
        }
        assert_eq!(t.counters(), (2, 1, 0));
    }

    #[test]
    fn perpetually_hung_payload_is_abandoned() {
        let mut l = launcher(1);
        let mut t = JobTracker::new(TrackerConfig {
            max_resubmits: 2,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(10),
            )
        });
        t.set_timeout_grace(1.5);
        let mut rng = StdRng::seed_from_u64(6);
        t.submit(&mut l, "cursed", SimTime::ZERO, &mut rng);
        let mut resubmits = 0;
        let mut abandoned = false;
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += SimDuration::from_mins(1);
            for e in l.poll(now) {
                t.on_event(&mut l, &e, &mut rng);
            }
            l.hang_running(JobClass::CgSim, now);
            now += SimDuration::from_mins(30);
            for e in l.poll(now) {
                t.on_event(&mut l, &e, &mut rng);
            }
            for tracked in t.expire_overdue(&mut l, now, &mut rng) {
                match tracked {
                    Tracked::Resubmitted { .. } => resubmits += 1,
                    Tracked::Abandoned { payload } => {
                        assert_eq!(&*payload, "cursed");
                        abandoned = true;
                    }
                    _ => {}
                }
            }
            if abandoned {
                break;
            }
        }
        assert_eq!(resubmits, 2, "budget of 2 resubmits");
        assert!(abandoned, "payload can never loop forever");
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.timed_out(), 3);
    }

    #[test]
    fn events_for_other_trackers_are_ignored() {
        let mut l = launcher(1);
        let mut cg = sim_tracker(0.0);
        let mut other = JobTracker::new(TrackerConfig::new(
            JobClass::AaSim,
            JobShape::sim_standard(),
            SimDuration::from_mins(5),
        ));
        let mut rng = StdRng::seed_from_u64(3);
        cg.submit(&mut l, "mine", SimTime::ZERO, &mut rng);
        let events = l.poll(SimTime::from_secs(1));
        for e in &events {
            assert!(other.on_event(&mut l, e, &mut rng).is_none());
        }
    }

    #[test]
    fn runtime_jitter_varies_finish_times() {
        let mut l = launcher(4);
        let mut t = JobTracker::new(TrackerConfig {
            runtime_jitter: 0.5,
            ..TrackerConfig::new(
                JobClass::CgSim,
                JobShape::sim_standard(),
                SimDuration::from_mins(100),
            )
        });
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..10 {
            t.submit(&mut l, &format!("p{i}"), SimTime::ZERO, &mut rng);
        }
        l.poll(SimTime::from_secs(1));
        let events = l.poll(SimTime::from_mins(300));
        let finish_times: std::collections::HashSet<u64> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::Finished { at, .. } => Some(at.as_micros()),
                _ => None,
            })
            .collect();
        assert!(finish_times.len() > 5, "jitter should spread finish times");
    }
}
