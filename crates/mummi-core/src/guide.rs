//! # Customizing MuMMI for a new application
//!
//! The paper commits to "guidelines to customize and further extend this
//! framework to support other scientific studies" (§1, §4.5). This module
//! is that guide; every snippet compiles and runs as a doctest.
//!
//! MuMMI is two parts. The **coordination** part — everything in this
//! crate plus `sched`, `datastore`, `dynim` — is generic. The
//! **application** part defines your scales. To port MuMMI, you provide
//! four building blocks (§4): simulation+analysis per scale, a method to
//! couple representations, a promotion decision, and a feedback method.
//!
//! ## 1. Pick (or build) your encoders and selectors
//!
//! Selection works on [`dynim::HdPoint`]s, so any encoding works. For
//! metric encodings use farthest-point sampling; for "disparate
//! quantities" where L2 is meaningless, use the binned sampler:
//!
//! ```
//! use dynim::{BinnedConfig, BinnedSampler, Sampler};
//!
//! // Say your fine-scale candidates are encoded as (energy, angle, size),
//! // three incommensurable axes: bin each independently.
//! let selector = BinnedSampler::new(BinnedConfig {
//!     dims: vec![(0.0, 10.0, 8), (0.0, 180.0, 12), (1.0, 99.0, 5)],
//!     importance: 0.9, // mostly explore rare bins
//!     seed: 1,
//! });
//! assert_eq!(selector.candidates(), 0);
//! ```
//!
//! ## 2. Describe your job types
//!
//! A [`crate::JobTracker`] is configured, not subclassed: resource shape,
//! runtime, failure budget.
//!
//! ```
//! use mummi_core::TrackerConfig;
//! use resources::JobShape;
//! use sched::JobClass;
//! use simcore::SimDuration;
//!
//! // A GPU solver with a 4-hour runtime, retried up to twice.
//! let tracker = TrackerConfig {
//!     runtime_jitter: 0.1,
//!     failure_prob: 0.0,
//!     max_resubmits: 2,
//!     ..TrackerConfig::new(
//!         JobClass::Other,
//!         JobShape::sim(4),
//!         SimDuration::from_hours(4),
//!     )
//! };
//! assert_eq!(tracker.shape.gpus_per_node, 1);
//! ```
//!
//! ## 3. Choose data backends per data flow
//!
//! One configuration switch per flow (§4.2): filesystem for
//! tool-compatible files, taridx for the billion-file problem, the KV
//! store for feedback, a [`datastore::TieredStore`] for RAM-disk + GPFS.
//!
//! ```
//! use datastore::{DataStore, KvDataStore, TieredStore};
//!
//! let mut store = TieredStore::new(
//!     KvDataStore::new(4),            // fast tier (on-node)
//!     KvDataStore::new(2),            // durable tier (shared filesystem)
//!     &["checkpoints"],               // what must survive the node
//! );
//! store.write("checkpoints", "wm", b"state").unwrap();
//! store.write("scratch", "tmp", b"big").unwrap();
//! assert_eq!(store.write_counts(), (2, 1));
//! ```
//!
//! ## 4. Write your feedback manager
//!
//! Implement [`crate::FeedbackManager`]: scan the live namespace, fold
//! each frame into your aggregate, and *move processed frames out* — that
//! namespace-move is what keeps iteration cost proportional to ongoing
//! work, not campaign history.
//!
//! ```
//! use datastore::{DataStore, KvDataStore};
//! use mummi_core::{FeedbackManager, FeedbackOutcome};
//!
//! /// Feedback that averages a scalar each fine simulation reports.
//! #[derive(Default)]
//! struct MeanObservable {
//!     sum: f64,
//!     n: u64,
//! }
//!
//! impl FeedbackManager for MeanObservable {
//!     type Report = f64;
//!
//!     fn iterate(&mut self, store: &mut dyn DataStore) -> datastore::Result<FeedbackOutcome> {
//!         let keys = store.list("obs-new")?;
//!         let mut processed = 0;
//!         for key in keys {
//!             let bytes = store.read("obs-new", &key)?;
//!             if let Ok(text) = std::str::from_utf8(&bytes) {
//!                 if let Ok(v) = text.parse::<f64>() {
//!                     self.sum += v;
//!                     self.n += 1;
//!                     processed += 1;
//!                 }
//!             }
//!             store.move_ns(&key, "obs-new", "obs-done")?; // the tag
//!         }
//!         Ok(FeedbackOutcome { processed, corrupt: 0 })
//!     }
//!
//!     fn report(&self) -> Option<f64> {
//!         (self.n > 0).then(|| self.sum / self.n as f64)
//!     }
//!
//!     fn total_processed(&self) -> u64 {
//!         self.n
//!     }
//! }
//!
//! let mut store = KvDataStore::new(2);
//! store.write("obs-new", "sim1:f0", b"2.0").unwrap();
//! store.write("obs-new", "sim2:f0", b"4.0").unwrap();
//! let mut fb = MeanObservable::default();
//! fb.iterate(&mut store).unwrap();
//! assert_eq!(fb.report(), Some(3.0));
//! assert_eq!(store.count("obs-new").unwrap(), 0);
//! ```
//!
//! ## 5. Assemble and drive the workflow manager
//!
//! The WM is the same for every application; only its inputs differ. See
//! the `custom_application` example for a complete two-scale port in
//! ~100 lines, and `three_scale_minicampaign` for the full RAS-RAF
//! pipeline.
//!
//! ```
//! use dynim::{ExactNn, FarthestPointSampler, FpsConfig, HdPoint, Sampler};
//! use mummi_core::{WmConfig, WorkflowManager};
//! use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
//! use sched::{Costs, Coupling, SchedEngine};
//! use datastore::KvDataStore;
//! use simcore::SimTime;
//!
//! let launcher = SchedEngine::new(
//!     ResourceGraph::new(MachineSpec::custom("mine", 2, NodeSpec::lassen())),
//!     MatchPolicy::FirstMatch,
//!     Coupling::Asynchronous,
//!     Costs::free(),
//! );
//! // Parse tunables from a config file (see mummi_core::parse_ini).
//! let cfg = WmConfig::from_ini("[workflow]\ncg_gpu_fraction = 1.0\n").unwrap();
//! let mut wm = WorkflowManager::new(
//!     cfg.clone(),
//!     launcher,
//!     Box::new(FarthestPointSampler::new(FpsConfig::default(), ExactNn::new())),
//!     Box::new(FarthestPointSampler::new(FpsConfig::default(), ExactNn::new())),
//!     1,
//! );
//! wm.add_patch_candidates(vec![HdPoint::new("candidate-0", vec![0.0, 1.0])]);
//! let mut store = KvDataStore::new(2);
//! let mut t = SimTime::ZERO;
//! for _ in 0..150 { // past the default 90-minute createsim runtime
//!     wm.tick(t, &mut store);
//!     t += cfg.poll_interval;
//! }
//! assert!(wm.stats().cg_sims_started > 0);
//! ```
//!
//! ## What you do *not* write
//!
//! Scheduling (throttling, unbundled GPU placement, failure resubmission),
//! occupancy profiling, checkpoint/restart, selector history replay, and
//! the feedback cadence are all coordination-side and configured, not
//! coded.
