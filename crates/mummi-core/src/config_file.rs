//! Configuration files.
//!
//! §4.3/§4.5: job trackers and the workflow are "customized using a
//! combination of inherited classes and configuration files". This module
//! provides the file format — a minimal INI dialect — and the parsing of
//! [`WmConfig`] from it:
//!
//! ```ini
//! # three-scale campaign, 70/30 GPU split
//! [workflow]
//! cg_gpu_fraction   = 0.7
//! cg_ready_buffer   = 100
//! poll_interval     = 2m
//! feedback_interval = 10m
//! submit_rate_per_min = 100
//! cg_sim_runtime    = 24h
//! job_failure_prob  = 0.01
//! ```
//!
//! Durations accept `s`, `m`, and `h` suffixes. Unknown keys are errors —
//! a silently ignored typo in a 24-hour allocation is an expensive typo.

use std::collections::BTreeMap;

use simcore::SimDuration;

use crate::config::WmConfig;

/// A parse failure with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parsed INI: section → key → (value, line). Ordered maps so that
/// iteration (and therefore which of several bad keys gets reported)
/// is deterministic.
pub type Ini = BTreeMap<String, BTreeMap<String, (String, usize)>>;

/// Parses the INI dialect: `[section]` headers, `key = value` pairs,
/// `#`/`;` comments, blank lines.
pub fn parse_ini(text: &str) -> Result<Ini, ConfigError> {
    let mut out: Ini = BTreeMap::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find(['#', ';']) {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                message: "unterminated section header".into(),
            })?;
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got {line:?}"),
        })?;
        out.entry(section.clone())
            .or_default()
            .insert(key.trim().to_string(), (value.trim().to_string(), lineno));
    }
    Ok(out)
}

/// Parses a duration literal: `90s`, `2m`, `24h`, or bare seconds.
pub fn parse_duration(v: &str, line: usize) -> Result<SimDuration, ConfigError> {
    let bad = |msg: &str| ConfigError {
        line,
        message: format!("{msg}: {v:?}"),
    };
    let (num, unit) = match v.char_indices().find(|(_, c)| c.is_ascii_alphabetic()) {
        Some((pos, _)) => v.split_at(pos),
        None => (v, "s"),
    };
    let n: f64 = num.trim().parse().map_err(|_| bad("bad duration number"))?;
    if n < 0.0 {
        return Err(bad("durations cannot be negative"));
    }
    let secs = match unit.trim() {
        "s" => n,
        "m" => n * 60.0,
        "h" => n * 3600.0,
        _ => return Err(bad("unknown duration unit (use s/m/h)")),
    };
    Ok(SimDuration::from_secs_f64(secs))
}

impl WmConfig {
    /// Builds a [`WmConfig`] from INI text, starting from the defaults.
    /// Every key in the `[workflow]` section must be recognized.
    pub fn from_ini(text: &str) -> Result<WmConfig, ConfigError> {
        let ini = parse_ini(text)?;
        let mut cfg = WmConfig::default();
        let Some(section) = ini.get("workflow") else {
            return Ok(cfg);
        };
        for (key, (value, line)) in section {
            let line = *line;
            let bad = |msg: &str| ConfigError {
                line,
                message: format!("{msg} for {key}: {value:?}"),
            };
            match key.as_str() {
                "cg_gpu_fraction" => {
                    cfg.cg_gpu_fraction = value.parse().map_err(|_| bad("expected a float"))?;
                }
                "cg_ready_buffer" => {
                    cfg.cg_ready_buffer = value.parse().map_err(|_| bad("expected an integer"))?;
                }
                "aa_ready_buffer" => {
                    cfg.aa_ready_buffer = value.parse().map_err(|_| bad("expected an integer"))?;
                }
                "poll_interval" => cfg.poll_interval = parse_duration(value, line)?,
                "feedback_interval" => cfg.feedback_interval = parse_duration(value, line)?,
                "profile_interval" => cfg.profile_interval = parse_duration(value, line)?,
                "submit_rate_per_min" => {
                    cfg.submit_rate_per_min =
                        value.parse().map_err(|_| bad("expected an integer"))?;
                }
                "cg_sim_runtime" => cfg.cg_sim_runtime = parse_duration(value, line)?,
                "aa_sim_runtime" => cfg.aa_sim_runtime = parse_duration(value, line)?,
                "cg_setup_runtime" => cfg.cg_setup_runtime = parse_duration(value, line)?,
                "aa_setup_runtime" => cfg.aa_setup_runtime = parse_duration(value, line)?,
                "job_failure_prob" => {
                    cfg.job_failure_prob = value.parse().map_err(|_| bad("expected a float"))?;
                }
                "max_resubmits" => {
                    cfg.max_resubmits = value.parse().map_err(|_| bad("expected an integer"))?;
                }
                "job_timeout_grace" => {
                    cfg.job_timeout_grace = value.parse().map_err(|_| bad("expected a float"))?;
                }
                "record_history" => {
                    cfg.record_history = value.parse().map_err(|_| bad("expected true/false"))?;
                }
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| bad("expected an integer"))?;
                }
                other => {
                    return Err(ConfigError {
                        line,
                        message: format!("unknown [workflow] key: {other}"),
                    })
                }
            }
        }
        if !(0.0..=1.0).contains(&cfg.cg_gpu_fraction) {
            return Err(ConfigError {
                line: 0,
                message: format!("cg_gpu_fraction must be in [0,1]: {}", cfg.cg_gpu_fraction),
            });
        }
        if !(0.0..=1.0).contains(&cfg.job_failure_prob) {
            return Err(ConfigError {
                line: 0,
                message: format!(
                    "job_failure_prob must be in [0,1]: {}",
                    cfg.job_failure_prob
                ),
            });
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_workflow_section_parses() {
        let cfg = WmConfig::from_ini(
            r#"
            # campaign config
            [workflow]
            cg_gpu_fraction   = 0.75
            cg_ready_buffer   = 123
            aa_ready_buffer   = 45
            poll_interval     = 2m
            feedback_interval = 10m   ; target
            profile_interval  = 600s
            submit_rate_per_min = 100
            cg_sim_runtime    = 24h
            aa_sim_runtime    = 12h
            cg_setup_runtime  = 90m
            aa_setup_runtime  = 2h
            job_failure_prob  = 0.02
            record_history    = false
            seed              = 42
            "#,
        )
        .unwrap();
        assert_eq!(cfg.cg_gpu_fraction, 0.75);
        assert_eq!(cfg.cg_ready_buffer, 123);
        assert_eq!(cfg.aa_ready_buffer, 45);
        assert_eq!(cfg.poll_interval, SimDuration::from_mins(2));
        assert_eq!(cfg.feedback_interval, SimDuration::from_mins(10));
        assert_eq!(cfg.profile_interval, SimDuration::from_mins(10));
        assert_eq!(cfg.cg_sim_runtime, SimDuration::from_hours(24));
        assert_eq!(cfg.cg_setup_runtime, SimDuration::from_mins(90));
        assert_eq!(cfg.job_failure_prob, 0.02);
        assert!(!cfg.record_history);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn empty_and_missing_section_use_defaults() {
        let cfg = WmConfig::from_ini("").unwrap();
        assert_eq!(cfg.cg_gpu_fraction, WmConfig::default().cg_gpu_fraction);
        let cfg = WmConfig::from_ini("[other]\nx = 1\n").unwrap();
        assert_eq!(cfg.seed, WmConfig::default().seed);
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_numbers() {
        let err = WmConfig::from_ini("[workflow]\ncg_gpu_fractoin = 0.7\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(WmConfig::from_ini("[workflow]\nseed = many\n").is_err());
        assert!(WmConfig::from_ini("[workflow]\npoll_interval = 5 days\n").is_err());
        assert!(WmConfig::from_ini("[workflow]\npoll_interval = -3s\n").is_err());
        assert!(WmConfig::from_ini("[workflow]\ncg_gpu_fraction = 1.5\n").is_err());
        assert!(WmConfig::from_ini("[workflow\nseed = 1\n").is_err());
        assert!(WmConfig::from_ini("[workflow]\njust a line\n").is_err());
    }

    #[test]
    fn durations_parse_all_units() {
        assert_eq!(
            parse_duration("90s", 1).unwrap(),
            SimDuration::from_secs(90)
        );
        assert_eq!(
            parse_duration("1.5m", 1).unwrap(),
            SimDuration::from_secs(90)
        );
        assert_eq!(parse_duration("2h", 1).unwrap(), SimDuration::from_hours(2));
        assert_eq!(parse_duration("45", 1).unwrap(), SimDuration::from_secs(45));
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let ini = parse_ini("  # lead\n[ workflow ]\n  seed=9 # trail\n").unwrap();
        assert_eq!(ini["workflow"]["seed"].0, "9");
    }
}
