//! The three-scale RAS-RAF-membrane application (the paper's §4.1).
//!
//! This module is MuMMI's *application* half for the campaign: which
//! encoders map patches and frames into selector space, how patches route
//! into the five configuration queues, and how the pieces assemble into a
//! ready-to-run [`WorkflowManager`]. Another science problem swaps this
//! module; the coordination layer is untouched.

use dynim::{BinnedConfig, BinnedSampler, HdPoint, MultiQueueSampler, Sampler};
use ml::{Autoencoder, AutoencoderConfig, Matrix, Pca};
use sched::Launcher;

use crate::config::WmConfig;
use crate::patches::PatchEncoder;
use crate::wm::WorkflowManager;

/// Which dimensionality reduction encodes patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// The metric-learning DNN stand-in: an autoencoder with a 9-D latent.
    Autoencoder,
    /// The "simpler dimensionality reduction" option.
    Pca,
}

/// Number of patch queues ("five in-memory queues in the Patch Selector
/// for sampling different protein configurations").
pub const PATCH_QUEUES: usize = 5;

/// Per-queue candidate cap ("each queue is capped at 35,000 patches").
pub const PATCH_QUEUE_CAP: usize = 35_000;

/// Latent dimensionality of the patch encoding (9-D in the campaign).
pub const PATCH_LATENT_DIM: usize = 9;

/// Trains a patch encoder on sample feature vectors.
///
/// The returned closure maps a feature vector to selector coordinates.
/// Training is deterministic for a seed.
pub fn train_patch_encoder(kind: EncoderKind, samples: &[Vec<f64>], seed: u64) -> PatchEncoder {
    assert!(!samples.is_empty(), "encoder training needs samples");
    let dim = samples[0].len();
    let flat: Vec<f64> = samples.iter().flatten().copied().collect();
    let m = Matrix::from_vec(samples.len(), dim, flat);
    match kind {
        EncoderKind::Autoencoder => {
            let mut cfg = AutoencoderConfig::small(dim);
            cfg.latent_dim = PATCH_LATENT_DIM.min(dim);
            cfg.seed = seed;
            cfg.epochs = 20;
            let mut ae = Autoencoder::new(cfg);
            ae.train(&m);
            Box::new(move |features: &[f64]| ae.encode(features))
        }
        EncoderKind::Pca => {
            let k = PATCH_LATENT_DIM.min(dim);
            let pca = Pca::fit(&m, k);
            Box::new(move |features: &[f64]| pca.transform(features))
        }
    }
}

/// Builds the five-queue patch selector. Candidates must carry the
/// protein's configurational state as their **first coordinate** (see
/// [`state_tagged_point`]); within a queue that coordinate is constant, so
/// farthest-point distances are unaffected.
pub fn patch_selector(cap: usize) -> Box<dyn Sampler + Send> {
    Box::new(MultiQueueSampler::new(
        PATCH_QUEUES,
        cap,
        Box::new(|p: &HdPoint| p.coords.first().map(|&s| s as usize).unwrap_or(0)),
    ))
}

/// Builds the binned CG-frame selector over the 3-D conformational
/// encoding.
pub fn frame_selector(importance: f64, seed: u64) -> Box<dyn Sampler + Send> {
    let mut cfg = BinnedConfig::cg_frames();
    cfg.importance = importance;
    cfg.seed = seed;
    Box::new(BinnedSampler::new(cfg))
}

/// Tags an encoded patch with its routing state: `[state, z1..z9]`.
pub fn state_tagged_point(id: &str, state: usize, encoded: Vec<f64>) -> HdPoint {
    let mut coords = Vec::with_capacity(encoded.len() + 1);
    coords.push((state % PATCH_QUEUES) as f64);
    coords.extend(encoded);
    HdPoint::new(id, coords)
}

/// Assembles the full three-scale workflow manager over any launcher.
pub fn build_three_scale_wm<L: Launcher>(
    cfg: WmConfig,
    launcher: L,
    n_species: usize,
) -> WorkflowManager<L> {
    let seed = cfg.seed;
    WorkflowManager::new(
        cfg,
        launcher,
        patch_selector(PATCH_QUEUE_CAP),
        frame_selector(0.8, seed),
        n_species,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic_features(n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(-1.0..1.0);
                (0..dim)
                    .map(|i| a * ((i as f64 + 1.0) * 0.37).sin() + rng.gen_range(-0.05..0.05))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn autoencoder_encoder_yields_9d() {
        let samples = synthetic_features(128, 24);
        let enc = train_patch_encoder(EncoderKind::Autoencoder, &samples, 1);
        let z = enc(&samples[0]);
        assert_eq!(z.len(), 9);
        assert_eq!(z, enc(&samples[0]), "deterministic encoding");
    }

    #[test]
    fn pca_encoder_yields_9d() {
        let samples = synthetic_features(64, 24);
        let enc = train_patch_encoder(EncoderKind::Pca, &samples, 1);
        assert_eq!(enc(&samples[0]).len(), 9);
    }

    #[test]
    fn state_routing_separates_queues() {
        let mut sel = patch_selector(100);
        for state in 0..5 {
            for i in 0..4 {
                sel.add(state_tagged_point(
                    &format!("s{state}-p{i}"),
                    state,
                    vec![i as f64; 9],
                ));
            }
        }
        assert_eq!(sel.candidates(), 20);
        // One selection round-robin pass draws from all five states.
        let picks = sel.select(5);
        let states: std::collections::HashSet<usize> =
            picks.iter().map(|p| p.coords[0] as usize).collect();
        assert_eq!(states.len(), 5);
    }

    #[test]
    fn state_tag_wraps_beyond_queue_count() {
        let p = state_tagged_point("x", 7, vec![0.0; 9]);
        assert_eq!(p.coords[0], 2.0);
        assert_eq!(p.dim(), 10);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_training_set_panics() {
        let _ = train_patch_encoder(EncoderKind::Pca, &[], 1);
    }
}
