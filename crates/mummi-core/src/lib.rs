//! The MuMMI workflow manager — generalizable coordination of large
//! multiscale workflows.
//!
//! The paper splits MuMMI into two parts (§4, Figure 2): the *application*
//! (what scales exist, what codes simulate them, what ML encodes them, how
//! feedback works) and the *coordination* (the generic machinery that ties
//! the application components together). This crate is the coordination
//! part, plus the reference three-scale application:
//!
//! - [`WmConfig`] / [`WorkflowManager`] — the configurable WM that performs
//!   the paper's four tasks (§4.4): processing coarse-scale data, selecting
//!   important patches/frames, scheduling and managing tens of thousands of
//!   jobs, and facilitating frequent feedback;
//! - [`JobTracker`] — "a generic and abstract Job Tracker that can be
//!   customized" per job type: resource shape, buffer targets, runtime
//!   model, failure handling with resubmission;
//! - [`FeedbackManager`] — the abstract feedback API, with the two concrete
//!   managers of the campaign: [`CgToContinuumFeedback`] (RDF aggregation →
//!   continuum coupling parameters) and [`AaToCgFeedback`] (secondary-
//!   structure consensus → CG force-field refinement);
//! - [`PatchCreator`] — Task 1: continuum snapshots → patches → data store
//!   + selector candidates;
//! - [`app3`] — the three-scale RAS-RAF-membrane application wiring: the
//!   multi-queue patch selector over a trained (or PCA) encoder, the binned
//!   CG-frame selector, and the runtime models. Swap this module to target
//!   a different science problem; the coordination layer is unchanged.

pub mod app3;
mod config;
mod config_file;
mod feedback;
pub mod guide;
mod patches;
mod tracker;
mod wm;

pub use config::WmConfig;
pub use config_file::{parse_duration, parse_ini, ConfigError};
pub use feedback::{
    AaToCgFeedback, CgParams, CgToContinuumFeedback, FeedbackManager, FeedbackOutcome,
};
pub use patches::PatchCreator;
pub use tracker::{JobTracker, Tracked, TrackerConfig};
pub use wm::{
    CheckpointError, RuntimeModel, TrackerTotals, WmCheckpoint, WmEvent, WmStats, WorkflowManager,
};

/// Namespace names used by the three-scale campaign's data flows.
pub mod ns {
    /// Continuum snapshots.
    pub const SNAPSHOTS: &str = "snapshots";
    /// Extracted patches.
    pub const PATCHES: &str = "patches";
    /// CG frames awaiting CG→continuum feedback.
    pub const RDF_NEW: &str = "rdf-new";
    /// CG frames already folded into feedback.
    pub const RDF_DONE: &str = "rdf-done";
    /// AA frames awaiting AA→CG feedback.
    pub const SS_NEW: &str = "ss-new";
    /// AA frames already folded into feedback.
    pub const SS_DONE: &str = "ss-done";
    /// Workflow-manager checkpoints.
    pub const WM: &str = "wm";
}
