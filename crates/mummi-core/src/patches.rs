//! Task 1: processing coarse-scale data for consumption.
//!
//! "The WM coordinates the Patch Creator, which reads each snapshot,
//! creates patches, and outputs them for consumption by the rest of the
//! framework" (§4.4 Task 1). Each patch is written to the data store (the
//! portable "Numpy format" analogue) and encoded into a candidate point
//! for the patch selector.

use continuum::{extract_patches, Patch, PatchConfig, Snapshot};
use datastore::DataStore;
use dynim::HdPoint;

/// Encodes a patch's feature vector into selector coordinates.
pub type PatchEncoder = Box<dyn Fn(&[f64]) -> Vec<f64> + Send>;

/// The patch creator: snapshot in, stored patches + candidates out.
pub struct PatchCreator {
    cfg: PatchConfig,
    encoder: PatchEncoder,
    created: u64,
    snapshots: u64,
}

impl std::fmt::Debug for PatchCreator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchCreator")
            .field("created", &self.created)
            .field("snapshots", &self.snapshots)
            .finish()
    }
}

impl PatchCreator {
    /// Creates a patch creator with an encoder (identity, PCA, or a
    /// trained autoencoder — the WM is agnostic).
    pub fn new(cfg: PatchConfig, encoder: PatchEncoder) -> PatchCreator {
        PatchCreator {
            cfg,
            encoder,
            created: 0,
            snapshots: 0,
        }
    }

    /// Patches created so far (the campaign created 6,828,831).
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Snapshots processed so far (the campaign processed 20,507).
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Processes one snapshot: stores every patch and returns the
    /// candidate points (with the patch's protein state as the queue-routing
    /// hint encoded in the candidate, see [`crate::app3`]).
    pub fn process(
        &mut self,
        snap: &Snapshot,
        store: &mut dyn DataStore,
    ) -> datastore::Result<Vec<(HdPoint, Patch)>> {
        let patches = extract_patches(snap, &self.cfg);
        let mut out = Vec::with_capacity(patches.len());
        for patch in patches {
            store.write(crate::ns::PATCHES, &patch.id, &patch.encode())?;
            let features = patch.feature_vector(&self.cfg);
            let coords = (self.encoder)(&features);
            out.push((HdPoint::new(patch.id.clone(), coords), patch));
            self.created += 1;
        }
        self.snapshots += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum::{ContinuumConfig, ContinuumSim};
    use datastore::{DataStore, KvDataStore};

    fn snapshot() -> Snapshot {
        let mut sim = ContinuumSim::new(ContinuumConfig {
            nx: 48,
            ny: 48,
            h: 1.0,
            inner_species: 2,
            outer_species: 1,
            n_proteins: 6,
            ..ContinuumConfig::laptop()
        });
        sim.run(10);
        sim.snapshot()
    }

    fn creator() -> PatchCreator {
        PatchCreator::new(
            PatchConfig {
                size_nm: 10.0,
                resolution: 11,
                feature_grid: 2,
            },
            Box::new(|f: &[f64]| f[..9.min(f.len())].to_vec()),
        )
    }

    #[test]
    fn stores_patches_and_emits_candidates() {
        let mut store = KvDataStore::new(4);
        let mut pc = creator();
        let snap = snapshot();
        let cands = pc.process(&snap, &mut store).unwrap();
        assert_eq!(cands.len(), 6);
        assert_eq!(pc.created(), 6);
        assert_eq!(pc.snapshots(), 1);
        assert_eq!(store.count(crate::ns::PATCHES).unwrap(), 6);
        for (point, patch) in &cands {
            assert_eq!(point.id, patch.id);
            assert_eq!(point.dim(), 9);
        }
    }

    #[test]
    fn stored_patches_roundtrip() {
        let mut store = KvDataStore::new(4);
        let mut pc = creator();
        let snap = snapshot();
        let cands = pc.process(&snap, &mut store).unwrap();
        let (point, original) = &cands[0];
        let bytes = store.read(crate::ns::PATCHES, &point.id).unwrap();
        let loaded = continuum::Patch::decode(&point.id, &bytes).unwrap();
        assert_eq!(&loaded, original);
    }

    #[test]
    fn counters_accumulate_across_snapshots() {
        let mut store = KvDataStore::new(4);
        let mut pc = creator();
        for _ in 0..3 {
            pc.process(&snapshot(), &mut store).unwrap();
        }
        assert_eq!(pc.snapshots(), 3);
        assert_eq!(pc.created(), 18);
    }
}
