//! The Workflow Manager (§4.4).
//!
//! "MuMMI is coordinated by a configurable Workflow Manager. Generically,
//! the role of the WM is to couple the scales by consuming relevant data,
//! supporting ML-based selection, spawning the corresponding simulations,
//! and facilitating a feedback loop." The WM here performs the paper's
//! four tasks against any [`sched::Launcher`] and [`datastore::DataStore`]:
//!
//! 1. coarse-data processing is fed in by the driver through
//!    [`WorkflowManager::add_patch_candidates`] /
//!    [`WorkflowManager::add_frame_candidates`] (the [`crate::PatchCreator`]
//!    produces them from snapshots);
//! 2. selection happens on demand when resources free up, through the
//!    configured samplers;
//! 3. job management keeps the GPU partition full: setup jobs keep the
//!    ready buffers stocked, simulations are spawned unbundled (one GPU
//!    each), failures are resubmitted;
//! 4. feedback iterations run on a fixed cadence and report aggregated
//!    parameters as [`WmEvent`]s for the driver to apply.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use continuum::CouplingParams;
use datastore::DataStore;
use dynim::{HdPoint, History, Sampler};
use resources::JobShape;
use sched::{JobClass, JobId, Launcher, Throttle};
use simcore::{OccupancyProfiler, OccupancySample, SimTime, Timeline};
use trace::Tracer;

use crate::config::WmConfig;
use crate::feedback::{AaToCgFeedback, CgParams, CgToContinuumFeedback, FeedbackManager};
use crate::tracker::{JobTracker, PayloadId, Tracked, TrackerConfig};

/// Notifications the WM hands back to its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum WmEvent {
    /// A createsim job finished; its CG system is ready to simulate.
    CgSetupDone {
        /// The source patch id.
        patch_id: PayloadId,
    },
    /// A CG simulation was placed on a GPU.
    CgSimStarted {
        /// Scheduler job id.
        job: JobId,
        /// Simulation id (= patch id).
        sim_id: PayloadId,
    },
    /// A CG simulation finished.
    CgSimFinished {
        /// Simulation id.
        sim_id: PayloadId,
    },
    /// A backmapping job finished; its AA system is ready to simulate.
    AaSetupDone {
        /// The source CG frame id.
        frame_id: PayloadId,
    },
    /// An AA simulation was placed on a GPU.
    AaSimStarted {
        /// Scheduler job id.
        job: JobId,
        /// Simulation id (= frame id).
        sim_id: PayloadId,
    },
    /// An AA simulation finished.
    AaSimFinished {
        /// Simulation id.
        sim_id: PayloadId,
    },
    /// A job failed and was resubmitted.
    JobResubmitted {
        /// Which class failed.
        class: JobClass,
        /// Application payload.
        payload: PayloadId,
    },
    /// A payload exhausted its resubmission budget and was permanently
    /// given up on (terminal — it will never be submitted again).
    JobAbandoned {
        /// Which class gave up.
        class: JobClass,
        /// Application payload.
        payload: PayloadId,
    },
    /// CG→continuum feedback produced updated coupling parameters.
    CouplingUpdated(CouplingParams),
    /// AA→CG feedback produced updated CG parameters.
    CgParamsUpdated(CgParams),
}

/// WM lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WmStats {
    /// Patch candidates ingested.
    pub patches_ingested: u64,
    /// CG-frame candidates ingested.
    pub frames_ingested: u64,
    /// Patches selected for CG promotion.
    pub cg_selected: u64,
    /// Frames selected for AA promotion.
    pub aa_selected: u64,
    /// CG simulations started.
    pub cg_sims_started: u64,
    /// AA simulations started.
    pub aa_sims_started: u64,
    /// CG simulations completed.
    pub cg_sims_completed: u64,
    /// AA simulations completed.
    pub aa_sims_completed: u64,
    /// Feedback iterations run.
    pub feedback_iterations: u64,
    /// Frames folded in by feedback (both kinds).
    pub feedback_frames: u64,
    /// Jobs canceled by the timeout watchdog (presumed hung).
    pub jobs_timed_out: u64,
    /// Payloads permanently abandoned after exhausting resubmits.
    pub jobs_abandoned: u64,
}

/// The workflow manager.
pub struct WorkflowManager<L: Launcher> {
    cfg: WmConfig,
    launcher: L,
    patch_selector: Box<dyn Sampler + Send>,
    frame_selector: Box<dyn Sampler + Send>,
    cg_setup: JobTracker,
    cg_sim: JobTracker,
    aa_setup: JobTracker,
    aa_sim: JobTracker,
    cg_feedback: CgToContinuumFeedback,
    aa_feedback: AaToCgFeedback,
    throttle: Throttle,
    profiler: OccupancyProfiler,
    cg_timeline: Timeline,
    aa_timeline: Timeline,
    /// Patch ids whose createsim completed, awaiting a GPU (interned).
    cg_ready: VecDeque<PayloadId>,
    /// Frame ids whose backmapping completed, awaiting a GPU (interned).
    aa_ready: VecDeque<PayloadId>,
    next_feedback: SimTime,
    next_profile: SimTime,
    stats: WmStats,
    rng: StdRng,
    /// Mutation logs of the two selectors — "elaborate history files that
    /// may be replayed exactly" (§4.4). Included in checkpoints so a
    /// restarted WM reconstructs its exact ML-selection state.
    patch_history: History,
    frame_history: History,
    /// Optional per-job runtime override: `(class, payload) -> runtime`.
    /// The campaign driver installs one so a simulation's virtual runtime
    /// reflects its remaining target length at its sampled throughput.
    runtime_model: Option<RuntimeModel>,
    /// Trace sink for WM loop, feedback, selection, and profile records
    /// (disabled by default).
    tracer: Tracer,
}

/// Computes a job's virtual runtime from its class and payload.
pub type RuntimeModel = Box<dyn FnMut(JobClass, &str) -> Option<simcore::SimDuration> + Send>;

impl<L: Launcher> WorkflowManager<L> {
    /// Assembles a WM over a launcher and the two selectors.
    pub fn new(
        cfg: WmConfig,
        launcher: L,
        patch_selector: Box<dyn Sampler + Send>,
        frame_selector: Box<dyn Sampler + Send>,
        n_species: usize,
    ) -> WorkflowManager<L> {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let throttle = Throttle::per_minute(cfg.submit_rate_per_min);
        let mk = |class, shape, runtime| {
            let mut t = JobTracker::new(TrackerConfig {
                runtime_jitter: 0.2,
                failure_prob: cfg.job_failure_prob,
                max_resubmits: cfg.max_resubmits,
                ..TrackerConfig::new(class, shape, runtime)
            });
            t.set_timeout_grace(cfg.job_timeout_grace);
            t.set_linear_scan(cfg.linear_scan);
            t
        };
        WorkflowManager {
            cg_setup: mk(JobClass::CgSetup, JobShape::setup(), cfg.cg_setup_runtime),
            cg_sim: mk(
                JobClass::CgSim,
                JobShape::sim_standard(),
                cfg.cg_sim_runtime,
            ),
            aa_setup: mk(JobClass::AaSetup, JobShape::setup(), cfg.aa_setup_runtime),
            aa_sim: mk(
                JobClass::AaSim,
                JobShape::sim_standard(),
                cfg.aa_sim_runtime,
            ),
            cg_feedback: CgToContinuumFeedback::new(n_species),
            aa_feedback: AaToCgFeedback::new(),
            throttle,
            profiler: OccupancyProfiler::new(),
            cg_timeline: Timeline::new(),
            aa_timeline: Timeline::new(),
            cg_ready: VecDeque::new(),
            aa_ready: VecDeque::new(),
            next_feedback: SimTime::ZERO + cfg.feedback_interval,
            next_profile: SimTime::ZERO,
            stats: WmStats::default(),
            rng,
            launcher,
            patch_selector,
            frame_selector,
            cfg,
            runtime_model: None,
            patch_history: History::new(),
            frame_history: History::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; the WM records its loop, feedback rounds,
    /// selections, and profile samples on it. Install the same handle on
    /// the launcher (e.g. [`sched::SchedEngine::set_tracer`]) to get the
    /// job-lifecycle records in the same trace.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a per-job runtime model (returns `None` to fall back to the
    /// tracker's configured runtime).
    pub fn set_runtime_model(&mut self, model: RuntimeModel) {
        self.runtime_model = Some(model);
    }

    /// The launcher (e.g. for occupancy queries by the driver).
    pub fn launcher(&self) -> &L {
        &self.launcher
    }

    /// Mutable launcher access, for jobs the WM does not manage itself
    /// (e.g. the campaign's single continuum job).
    pub fn launcher_mut(&mut self) -> &mut L {
        &mut self.launcher
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WmStats {
        self.stats
    }

    /// Aggregate accounting over all four job trackers, for end-of-run
    /// reconciliation against the scheduler's own counters.
    pub fn tracker_totals(&self) -> TrackerTotals {
        let mut t = TrackerTotals::default();
        for tr in [&self.cg_setup, &self.cg_sim, &self.aa_setup, &self.aa_sim] {
            let (s, c, f) = tr.counters();
            t.submitted += s;
            t.completed += c;
            t.failed += f;
            t.timed_out += tr.timed_out();
            t.live += tr.live_count() as u64;
        }
        t
    }

    /// The next feedback and profile due-times, for carrying the cadence
    /// across a WM crash within one allocation (deliberately not part of
    /// [`WmCheckpoint`]: a restore on a *new* allocation starts its
    /// cadence from that allocation's own clock).
    pub fn cadence(&self) -> (SimTime, SimTime) {
        (self.next_feedback, self.next_profile)
    }

    /// Restores the feedback/profile cadence (see [`WorkflowManager::cadence`]).
    pub fn set_cadence(&mut self, next_feedback: SimTime, next_profile: SimTime) {
        self.next_feedback = next_feedback;
        self.next_profile = next_profile;
    }

    /// The occupancy profiler (Figure 5 source data).
    pub fn profiler(&self) -> &OccupancyProfiler {
        &self.profiler
    }

    /// Running/pending timeline of CG GPU jobs (Figure 6 source data).
    pub fn cg_timeline(&self) -> &Timeline {
        &self.cg_timeline
    }

    /// Running/pending timeline of AA GPU jobs (Figure 6 source data).
    pub fn aa_timeline(&self) -> &Timeline {
        &self.aa_timeline
    }

    /// Patch candidates waiting in the selector.
    pub fn patch_candidates(&self) -> usize {
        self.patch_selector.candidates()
    }

    /// Frame candidates waiting in the selector.
    pub fn frame_candidates(&self) -> usize {
        self.frame_selector.candidates()
    }

    /// Ingests new patch candidates (Task 1 output).
    pub fn add_patch_candidates(&mut self, mut points: Vec<HdPoint>) {
        self.add_patch_candidates_from(&mut points);
    }

    /// [`WorkflowManager::add_patch_candidates`] draining a caller-owned
    /// buffer, so a driver loop can reuse one allocation across ticks.
    pub fn add_patch_candidates_from(&mut self, points: &mut Vec<HdPoint>) {
        self.stats.patches_ingested += points.len() as u64;
        for p in points.drain(..) {
            if self.cfg.record_history {
                self.patch_history.record_add(&p);
            }
            self.patch_selector.add(p);
        }
    }

    /// Ingests new CG-frame candidates (from the distributed CG analyses).
    pub fn add_frame_candidates(&mut self, mut points: Vec<HdPoint>) {
        self.add_frame_candidates_from(&mut points);
    }

    /// [`WorkflowManager::add_frame_candidates`] draining a caller-owned
    /// buffer (see [`WorkflowManager::add_patch_candidates_from`]).
    pub fn add_frame_candidates_from(&mut self, points: &mut Vec<HdPoint>) {
        self.stats.frames_ingested += points.len() as u64;
        for p in points.drain(..) {
            if self.cfg.record_history {
                self.frame_history.record_add(&p);
            }
            self.frame_selector.add(p);
        }
    }

    /// The earliest instant after `now` at which a [`WorkflowManager::tick`]
    /// would do anything: the launcher's next event, the feedback or
    /// profile cadence, or the hang-watchdog's next deadline. Event-driven
    /// drivers jump the clock to the minimum of this and their own event
    /// sources instead of polling on a fixed interval.
    ///
    /// The instant is conservative (waking the WM early is harmless — an
    /// undue tick is a cheap no-op) but never late: no tracked state
    /// changes strictly before the returned time.
    pub fn next_wakeup(&self, now: SimTime) -> SimTime {
        let eps = simcore::SimDuration::from_micros(1);
        let mut next = self.next_feedback.min(self.next_profile);
        if let Some(t) = self.launcher.next_wakeup() {
            next = next.min(t);
        }
        if self.cfg.job_timeout_grace > 0.0 {
            for tr in [&self.cg_setup, &self.cg_sim, &self.aa_setup, &self.aa_sim] {
                if let Some(deadline) = tr.earliest_timeout() {
                    // `expire_overdue` uses a strict comparison, so the
                    // job is only reclaimable just past its deadline.
                    next = next.min(deadline + eps);
                }
            }
        }
        next.max(now + eps)
    }

    /// One WM cycle at time `now`: poll jobs, replace finished ones, keep
    /// buffers stocked, run feedback and profiling when due.
    pub fn tick(&mut self, now: SimTime, store: &mut dyn DataStore) -> Vec<WmEvent> {
        let mut events = Vec::new();
        self.tick_into(now, store, &mut events);
        events
    }

    /// [`WorkflowManager::tick`] writing into a caller-owned buffer
    /// (cleared first), so a driver loop can reuse one allocation across
    /// ticks instead of constructing a fresh `Vec` per cycle.
    pub fn tick_into(
        &mut self,
        now: SimTime,
        store: &mut dyn DataStore,
        events: &mut Vec<WmEvent>,
    ) {
        self.tick_poll_phase(now, events);
        self.tick_maintain_phase(now, store, events);
    }

    /// The first half of a WM cycle: poll the launcher and expire hung
    /// jobs. This phase never touches the data store, so a parallel
    /// driver can run it concurrently with data generation that owns the
    /// store, then finish the cycle with
    /// [`WorkflowManager::tick_maintain_phase`]. Running both phases
    /// back-to-back is exactly [`WorkflowManager::tick_into`]: the split
    /// point is between statements of the serial cycle, and each phase
    /// consumes the WM's RNG and emits trace events in the same order as
    /// the unsplit tick.
    pub fn tick_poll_phase(&mut self, now: SimTime, events: &mut Vec<WmEvent>) {
        // Keep the tracer clock current so emitters without a time
        // parameter (datastore ops, cancellations) stamp correctly.
        self.tracer.set_now(now);
        self.tracer.instant_at(now, "wm", "wm.tick", &[]);
        events.clear();
        self.poll_jobs(now, events);
        self.expire_hung_jobs(now, events);
    }

    /// The second half of a WM cycle: replace finished simulations, keep
    /// the ready buffers stocked, and run feedback/profiling when due.
    /// Appends to `events` after [`WorkflowManager::tick_poll_phase`]'s
    /// output (it does not clear the buffer). Needs the store: feedback
    /// reads analyzed frames and writes the updated sampling weights.
    pub fn tick_maintain_phase(
        &mut self,
        now: SimTime,
        store: &mut dyn DataStore,
        events: &mut Vec<WmEvent>,
    ) {
        self.maintain_sims(now, events);
        self.maintain_setups(now);
        self.run_feedback(now, store, events);
        self.sample_profile(now);
    }

    /// Task 3: scan all running jobs, determine completion, route events.
    fn poll_jobs(&mut self, now: SimTime, events: &mut Vec<WmEvent>) {
        let raw = self.launcher.poll(now);
        for ev in &raw {
            // Each event belongs to exactly one tracker.
            if let Some(t) = self
                .cg_setup
                .on_event(&mut self.launcher, ev, &mut self.rng)
            {
                match t {
                    Tracked::Done { payload } => {
                        self.cg_ready.push_back(payload.clone());
                        events.push(WmEvent::CgSetupDone { patch_id: payload });
                    }
                    Tracked::Resubmitted { payload, attempt } => {
                        self.trace_resubmit(now, JobClass::CgSetup, &payload, attempt);
                        events.push(WmEvent::JobResubmitted {
                            class: JobClass::CgSetup,
                            payload,
                        });
                    }
                    Tracked::Abandoned { payload } => {
                        self.give_up(now, JobClass::CgSetup, payload, events);
                    }
                    _ => {}
                }
                continue;
            }
            if let Some(t) = self.cg_sim.on_event(&mut self.launcher, ev, &mut self.rng) {
                match t {
                    Tracked::Started { job, payload } => {
                        self.stats.cg_sims_started += 1;
                        events.push(WmEvent::CgSimStarted {
                            job,
                            sim_id: payload,
                        });
                    }
                    Tracked::Done { payload } => {
                        self.stats.cg_sims_completed += 1;
                        events.push(WmEvent::CgSimFinished { sim_id: payload });
                    }
                    Tracked::Resubmitted { payload, attempt } => {
                        self.trace_resubmit(now, JobClass::CgSim, &payload, attempt);
                        events.push(WmEvent::JobResubmitted {
                            class: JobClass::CgSim,
                            payload,
                        });
                    }
                    Tracked::Abandoned { payload } => {
                        self.give_up(now, JobClass::CgSim, payload, events);
                    }
                }
                continue;
            }
            if let Some(t) = self
                .aa_setup
                .on_event(&mut self.launcher, ev, &mut self.rng)
            {
                match t {
                    Tracked::Done { payload } => {
                        self.aa_ready.push_back(payload.clone());
                        events.push(WmEvent::AaSetupDone { frame_id: payload });
                    }
                    Tracked::Resubmitted { payload, attempt } => {
                        self.trace_resubmit(now, JobClass::AaSetup, &payload, attempt);
                        events.push(WmEvent::JobResubmitted {
                            class: JobClass::AaSetup,
                            payload,
                        });
                    }
                    Tracked::Abandoned { payload } => {
                        self.give_up(now, JobClass::AaSetup, payload, events);
                    }
                    _ => {}
                }
                continue;
            }
            if let Some(t) = self.aa_sim.on_event(&mut self.launcher, ev, &mut self.rng) {
                match t {
                    Tracked::Started { job, payload } => {
                        self.stats.aa_sims_started += 1;
                        events.push(WmEvent::AaSimStarted {
                            job,
                            sim_id: payload,
                        });
                    }
                    Tracked::Done { payload } => {
                        self.stats.aa_sims_completed += 1;
                        events.push(WmEvent::AaSimFinished { sim_id: payload });
                    }
                    Tracked::Resubmitted { payload, attempt } => {
                        self.trace_resubmit(now, JobClass::AaSim, &payload, attempt);
                        events.push(WmEvent::JobResubmitted {
                            class: JobClass::AaSim,
                            payload,
                        });
                    }
                    Tracked::Abandoned { payload } => {
                        self.give_up(now, JobClass::AaSim, payload, events);
                    }
                }
            }
        }
    }

    /// The §4.4 hang watchdog: cancel-and-resubmit any placed job that
    /// has overstayed `job_timeout_grace` times its submitted runtime.
    /// Disabled when the grace factor is zero.
    fn expire_hung_jobs(&mut self, now: SimTime, events: &mut Vec<WmEvent>) {
        if self.cfg.job_timeout_grace <= 0.0 {
            return;
        }
        // Iterate trackers in a fixed order (determinism contract).
        for which in 0..4usize {
            let tracker = match which {
                0 => &mut self.cg_setup,
                1 => &mut self.cg_sim,
                2 => &mut self.aa_setup,
                _ => &mut self.aa_sim,
            };
            let class = tracker.class();
            let expired = tracker.expire_overdue(&mut self.launcher, now, &mut self.rng);
            for tracked in expired {
                self.stats.jobs_timed_out += 1;
                match tracked {
                    Tracked::Resubmitted { payload, attempt } => {
                        self.tracer.instant_at(
                            now,
                            "wm",
                            "wm.timeout",
                            &[
                                ("class", class.label().into()),
                                ("payload", (&*payload).into()),
                                ("attempt", attempt.into()),
                            ],
                        );
                        self.tracer.counter_add("wm.timeouts", 1);
                        events.push(WmEvent::JobResubmitted { class, payload });
                    }
                    Tracked::Abandoned { payload } => {
                        self.tracer.instant_at(
                            now,
                            "wm",
                            "wm.timeout",
                            &[
                                ("class", class.label().into()),
                                ("payload", (&*payload).into()),
                            ],
                        );
                        self.tracer.counter_add("wm.timeouts", 1);
                        self.give_up(now, class, payload, events);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Terminal abandonment: the payload exhausted its budget and will
    /// never be submitted again. Recorded as the `wm.gave_up` trace event
    /// so lost work is visible rather than silently dropped.
    fn give_up(
        &mut self,
        now: SimTime,
        class: JobClass,
        payload: PayloadId,
        events: &mut Vec<WmEvent>,
    ) {
        self.stats.jobs_abandoned += 1;
        self.tracer.instant_at(
            now,
            "wm",
            "wm.gave_up",
            &[
                ("class", class.label().into()),
                ("payload", (&*payload).into()),
            ],
        );
        self.tracer.counter_add("wm.gave_up", 1);
        events.push(WmEvent::JobAbandoned { class, payload });
    }

    /// Records one failed-and-resubmitted job on the trace.
    fn trace_resubmit(&self, now: SimTime, class: JobClass, payload: &str, attempt: u32) {
        self.tracer.instant_at(
            now,
            "wm",
            "wm.resubmit",
            &[
                ("class", class.label().into()),
                ("payload", payload.into()),
                ("attempt", attempt.into()),
            ],
        );
        self.tracer.counter_add("wm.resubmits", 1);
    }

    /// Keep the GPU partition full: spawn simulations from the ready
    /// buffers up to each scale's GPU target.
    fn maintain_sims(&mut self, now: SimTime, events: &mut Vec<WmEvent>) {
        let (_, total_gpus) = self.launcher.gpu_usage();
        let (cg_target, aa_target) = self.cfg.gpu_targets(total_gpus);

        loop {
            let (running, pending) = self.cg_sim.counts(&self.launcher);
            if running + pending >= cg_target {
                break;
            }
            let Some(sim_id) = self.cg_ready.pop_front() else {
                break;
            };
            let at = self.throttle.reserve(now);
            match self
                .runtime_model
                .as_mut()
                .and_then(|m| m(JobClass::CgSim, &sim_id))
            {
                Some(rt) => {
                    self.cg_sim.submit_interned_with(
                        &mut self.launcher,
                        sim_id,
                        at,
                        rt,
                        &mut self.rng,
                    );
                }
                None => {
                    self.cg_sim
                        .submit_interned(&mut self.launcher, sim_id, at, &mut self.rng);
                }
            }
            let _ = events; // started events arrive via poll on placement
        }
        loop {
            let (running, pending) = self.aa_sim.counts(&self.launcher);
            if running + pending >= aa_target {
                break;
            }
            let Some(sim_id) = self.aa_ready.pop_front() else {
                break;
            };
            let at = self.throttle.reserve(now);
            match self
                .runtime_model
                .as_mut()
                .and_then(|m| m(JobClass::AaSim, &sim_id))
            {
                Some(rt) => {
                    self.aa_sim.submit_interned_with(
                        &mut self.launcher,
                        sim_id,
                        at,
                        rt,
                        &mut self.rng,
                    );
                }
                None => {
                    self.aa_sim
                        .submit_interned(&mut self.launcher, sim_id, at, &mut self.rng);
                }
            }
        }
    }

    /// CPU cores not yet spoken for: free cores minus the cores committed
    /// to still-pending jobs. Setup jobs are only submitted against real
    /// headroom — the paper's WM "submits new jobs … to re-engage
    /// resources as soon as they become available", and under FCFS without
    /// backfilling an unplaceable setup at the queue head would convoy
    /// every simulation behind it.
    fn cpu_headroom(&self) -> i64 {
        let (used, total) = self.launcher.cpu_usage();
        let pending_cores = |t: &JobTracker, per_job: u64| -> u64 {
            let (_, pending) = t.counts(&self.launcher);
            pending * per_job
        };
        let committed = pending_cores(&self.cg_setup, JobShape::setup().total_cores())
            + pending_cores(&self.aa_setup, JobShape::setup().total_cores())
            + pending_cores(&self.cg_sim, JobShape::sim_standard().total_cores())
            + pending_cores(&self.aa_sim, JobShape::sim_standard().total_cores());
        total as i64 - used as i64 - committed as i64
    }

    /// Keep the ready buffers stocked: select new patches/frames and spawn
    /// setup jobs. "To prevent GPU downtime, sets of CG and AA simulations
    /// are kept prepared in anticipation."
    fn maintain_setups(&mut self, now: SimTime) {
        let setup_cores = JobShape::setup().total_cores() as i64;
        loop {
            let (running, pending) = self.cg_setup.counts(&self.launcher);
            let in_flight = (running + pending) as usize;
            if self.cg_ready.len() + in_flight >= self.cfg.cg_ready_buffer
                || self.cpu_headroom() < setup_cores
            {
                break;
            }
            let Some(pick) = self.patch_selector.select(1).pop() else {
                break;
            };
            if self.cfg.record_history {
                self.patch_history.record_select(&pick.id);
            }
            self.stats.cg_selected += 1;
            self.tracer.instant_at(
                now,
                "wm",
                "wm.select",
                &[
                    ("class", JobClass::CgSetup.label().into()),
                    ("payload", pick.id.as_str().into()),
                ],
            );
            self.tracer.counter_add("wm.selected", 1);
            let at = self.throttle.reserve(now);
            self.cg_setup
                .submit(&mut self.launcher, &pick.id, at, &mut self.rng);
        }
        loop {
            let (running, pending) = self.aa_setup.counts(&self.launcher);
            let in_flight = (running + pending) as usize;
            if self.aa_ready.len() + in_flight >= self.cfg.aa_ready_buffer
                || self.cpu_headroom() < setup_cores
            {
                break;
            }
            let Some(pick) = self.frame_selector.select(1).pop() else {
                break;
            };
            if self.cfg.record_history {
                self.frame_history.record_select(&pick.id);
            }
            self.stats.aa_selected += 1;
            self.tracer.instant_at(
                now,
                "wm",
                "wm.select",
                &[
                    ("class", JobClass::AaSetup.label().into()),
                    ("payload", pick.id.as_str().into()),
                ],
            );
            self.tracer.counter_add("wm.selected", 1);
            let at = self.throttle.reserve(now);
            self.aa_setup
                .submit(&mut self.launcher, &pick.id, at, &mut self.rng);
        }
    }

    /// Task 4: run both feedback iterations when due.
    fn run_feedback(&mut self, now: SimTime, store: &mut dyn DataStore, events: &mut Vec<WmEvent>) {
        if now < self.next_feedback {
            return;
        }
        self.next_feedback = now + self.cfg.feedback_interval;
        self.stats.feedback_iterations += 1;
        if let Ok(out) = self.cg_feedback.iterate(store) {
            self.stats.feedback_frames += out.processed as u64;
            self.trace_feedback(now, "cg-continuum", &out);
            if out.processed > 0 {
                if let Some(params) = self.cg_feedback.report() {
                    events.push(WmEvent::CouplingUpdated(params));
                }
            }
        }
        if let Ok(out) = self.aa_feedback.iterate(store) {
            self.stats.feedback_frames += out.processed as u64;
            self.trace_feedback(now, "aa-cg", &out);
            if out.processed > 0 {
                if let Some(params) = self.aa_feedback.report() {
                    events.push(WmEvent::CgParamsUpdated(params));
                }
            }
        }
    }

    /// Records one feedback round on the trace.
    fn trace_feedback(&self, now: SimTime, manager: &str, out: &crate::feedback::FeedbackOutcome) {
        self.tracer.instant_at(
            now,
            "feedback",
            "feedback.round",
            &[
                ("manager", manager.into()),
                ("processed", out.processed.into()),
                ("corrupt", out.corrupt.into()),
            ],
        );
        self.tracer
            .counter_add("feedback.frames", out.processed as u64);
    }

    /// Record a profile event (Figures 5 and 6) when due.
    fn sample_profile(&mut self, now: SimTime) {
        if now < self.next_profile {
            return;
        }
        self.next_profile = now + self.cfg.profile_interval;
        let (gpus_used, gpus_total) = self.launcher.gpu_usage();
        let (cpus_used, cpus_total) = self.launcher.cpu_usage();
        self.profiler.record(OccupancySample {
            at: now,
            gpus_used,
            gpus_total,
            cpus_used,
            cpus_total,
        });
        // The `wm.profile` / `wm.timeline` records mirror the live
        // collectors exactly — `trace::derive` rebuilds the Figure 5/6
        // series from them, integer for integer.
        self.tracer.instant_at(
            now,
            "wm",
            "wm.profile",
            &[
                ("gpus_used", gpus_used.into()),
                ("gpus_total", gpus_total.into()),
                ("cpus_used", cpus_used.into()),
                ("cpus_total", cpus_total.into()),
            ],
        );
        if gpus_total > 0 {
            self.tracer.gauge_set(
                "wm.gpu_occupancy_pct",
                100.0 * gpus_used as f64 / gpus_total as f64,
            );
        }
        let (r, p) = self.cg_sim.counts(&self.launcher);
        self.cg_timeline.record(now, r, p);
        self.trace_timeline(now, "cg", r, p);
        let (r, p) = self.aa_sim.counts(&self.launcher);
        self.aa_timeline.record(now, r, p);
        self.trace_timeline(now, "aa", r, p);
    }

    /// Records one Figure 6 timeline point on the trace.
    fn trace_timeline(&self, now: SimTime, class: &str, running: u64, pending: u64) {
        self.tracer.instant_at(
            now,
            "wm",
            "wm.timeline",
            &[
                ("class", class.into()),
                ("running", running.into()),
                ("pending", pending.into()),
            ],
        );
    }

    /// Serializes restartable WM state: counters, ready buffers, and the
    /// selector histories.
    pub fn checkpoint(&self) -> WmCheckpoint {
        WmCheckpoint {
            stats: self.stats,
            cg_ready: self.cg_ready.iter().map(|p| p.to_string()).collect(),
            aa_ready: self.aa_ready.iter().map(|p| p.to_string()).collect(),
            patch_history: self.patch_history.compact().to_text(),
            frame_history: self.frame_history.compact().to_text(),
        }
    }

    /// Restores counters, ready buffers, and selector state from a
    /// checkpoint. The histories are replayed into the (fresh) selectors,
    /// reconstructing their candidate queues and selected sets exactly.
    pub fn restore(&mut self, ckpt: &WmCheckpoint) {
        self.stats = ckpt.stats;
        self.cg_ready = ckpt
            .cg_ready
            .iter()
            .map(|s| PayloadId::from(s.as_str()))
            .collect();
        self.aa_ready = ckpt
            .aa_ready
            .iter()
            .map(|s| PayloadId::from(s.as_str()))
            .collect();
        if let Some(h) = History::from_text(&ckpt.patch_history) {
            h.replay(self.patch_selector.as_mut());
            self.patch_history = h;
        }
        if let Some(h) = History::from_text(&ckpt.frame_history) {
            h.replay(self.frame_selector.as_mut());
            self.frame_history = h;
        }
    }
}

/// Aggregate accounting over the WM's four job trackers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerTotals {
    /// Jobs submitted (including resubmissions).
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that finished as failures.
    pub failed: u64,
    /// Jobs canceled by the timeout watchdog.
    pub timed_out: u64,
    /// Jobs still live (submitted or running).
    pub live: u64,
}

/// Restartable WM state.
#[derive(Debug, Clone, PartialEq)]
pub struct WmCheckpoint {
    /// Lifetime counters.
    pub stats: WmStats,
    /// Prepared CG systems awaiting GPUs.
    pub cg_ready: Vec<String>,
    /// Prepared AA systems awaiting GPUs.
    pub aa_ready: Vec<String>,
    /// Patch-selector mutation log (replayable).
    pub patch_history: String,
    /// Frame-selector mutation log (replayable).
    pub frame_history: String,
}

/// A typed error from [`WmCheckpoint::from_text`], carrying the offending
/// line so a corrupt checkpoint names its own problem instead of silently
/// restoring half a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The raw line.
        content: String,
        /// What was wrong.
        reason: String,
    },
    /// The `stats` section appeared more than once.
    DuplicateStats {
        /// 1-based line number of the second occurrence.
        line: usize,
    },
    /// No `stats` section was found.
    MissingStats,
    /// The trailing `end <count>` line is missing (truncated file).
    MissingFooter,
    /// The footer count disagrees with the body lines actually present.
    CountMismatch {
        /// Lines the footer promised.
        expected: usize,
        /// Lines actually parsed.
        actual: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadLine {
                line,
                content,
                reason,
            } => write!(f, "checkpoint line {line}: {reason}: `{content}`"),
            CheckpointError::DuplicateStats { line } => {
                write!(f, "checkpoint line {line}: duplicated stats section")
            }
            CheckpointError::MissingStats => write!(f, "checkpoint has no stats line"),
            CheckpointError::MissingFooter => {
                write!(f, "checkpoint missing `end <count>` footer (truncated?)")
            }
            CheckpointError::CountMismatch { expected, actual } => write!(
                f,
                "checkpoint footer promised {expected} body lines, found {actual}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl WmCheckpoint {
    /// Serializes to a line-oriented text format, ending with a counted
    /// `end` footer so truncation is detectable.
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "stats {} {} {} {} {} {} {} {} {} {} {} {}\n",
            s.patches_ingested,
            s.frames_ingested,
            s.cg_selected,
            s.aa_selected,
            s.cg_sims_started,
            s.aa_sims_started,
            s.cg_sims_completed,
            s.aa_sims_completed,
            s.feedback_iterations,
            s.feedback_frames,
            s.jobs_timed_out,
            s.jobs_abandoned,
        );
        let mut body = 1usize;
        for id in &self.cg_ready {
            out.push_str(&format!("cg {id}\n"));
            body += 1;
        }
        for id in &self.aa_ready {
            out.push_str(&format!("aa {id}\n"));
            body += 1;
        }
        for line in self.patch_history.lines() {
            out.push_str(&format!("ph {line}\n"));
            body += 1;
        }
        for line in self.frame_history.lines() {
            out.push_str(&format!("fh {line}\n"));
            body += 1;
        }
        out.push_str(&format!("end {body}\n"));
        out
    }

    /// Parses the text format, naming the offending line on failure.
    pub fn from_text(text: &str) -> Result<WmCheckpoint, CheckpointError> {
        let mut stats: Option<WmStats> = None;
        let mut cg_ready = Vec::new();
        let mut aa_ready = Vec::new();
        let mut patch_history = String::new();
        let mut frame_history = String::new();
        let mut body = 0usize;
        let mut footer: Option<usize> = None;
        for (idx, line) in text.lines().enumerate() {
            let bad = |reason: &str| CheckpointError::BadLine {
                line: idx + 1,
                content: line.to_string(),
                reason: reason.to_string(),
            };
            if footer.is_some() {
                return Err(bad("content after `end` footer"));
            }
            let (tag, rest) = line.split_once(' ').ok_or_else(|| bad("missing tag"))?;
            match tag {
                "stats" => {
                    if stats.is_some() {
                        return Err(CheckpointError::DuplicateStats { line: idx + 1 });
                    }
                    let v: Vec<u64> = rest
                        .split(' ')
                        .map(|x| x.parse().ok())
                        .collect::<Option<_>>()
                        .ok_or_else(|| bad("non-numeric stats field"))?;
                    if v.len() != 12 {
                        return Err(bad("stats needs exactly 12 fields"));
                    }
                    stats = Some(WmStats {
                        patches_ingested: v[0],
                        frames_ingested: v[1],
                        cg_selected: v[2],
                        aa_selected: v[3],
                        cg_sims_started: v[4],
                        aa_sims_started: v[5],
                        cg_sims_completed: v[6],
                        aa_sims_completed: v[7],
                        feedback_iterations: v[8],
                        feedback_frames: v[9],
                        jobs_timed_out: v[10],
                        jobs_abandoned: v[11],
                    });
                    body += 1;
                }
                "cg" => {
                    cg_ready.push(rest.to_string());
                    body += 1;
                }
                "aa" => {
                    aa_ready.push(rest.to_string());
                    body += 1;
                }
                "ph" => {
                    if History::from_text(rest).is_none() {
                        return Err(bad("unreplayable patch-history record"));
                    }
                    patch_history.push_str(rest);
                    patch_history.push('\n');
                    body += 1;
                }
                "fh" => {
                    if History::from_text(rest).is_none() {
                        return Err(bad("unreplayable frame-history record"));
                    }
                    frame_history.push_str(rest);
                    frame_history.push('\n');
                    body += 1;
                }
                "end" => {
                    let n: usize = rest.parse().map_err(|_| bad("footer needs a line count"))?;
                    footer = Some(n);
                }
                _ => return Err(bad("unknown checkpoint field")),
            }
        }
        let expected = footer.ok_or(CheckpointError::MissingFooter)?;
        if expected != body {
            return Err(CheckpointError::CountMismatch {
                expected,
                actual: body,
            });
        }
        let stats = stats.ok_or(CheckpointError::MissingStats)?;
        Ok(WmCheckpoint {
            stats,
            cg_ready,
            aa_ready,
            patch_history,
            frame_history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datastore::{DataStore, KvDataStore};
    use dynim::{BinnedConfig, BinnedSampler, ExactNn, FarthestPointSampler, FpsConfig};
    use resources::{MachineSpec, MatchPolicy, NodeSpec, ResourceGraph};
    use sched::{Costs, Coupling, SchedEngine};
    use simcore::SimDuration;

    fn wm(nodes: u32, cfg: WmConfig) -> WorkflowManager<SchedEngine> {
        let launcher = SchedEngine::new(
            ResourceGraph::new(MachineSpec::custom("t", nodes, NodeSpec::summit())),
            MatchPolicy::FirstMatch,
            Coupling::Asynchronous,
            Costs::free(),
        );
        WorkflowManager::new(
            cfg,
            launcher,
            Box::new(FarthestPointSampler::new(
                FpsConfig { cap: 0 },
                ExactNn::new(),
            )),
            Box::new(BinnedSampler::new(BinnedConfig::cg_frames())),
            2,
        )
    }

    fn patch_points(n: usize, offset: usize) -> Vec<HdPoint> {
        (0..n)
            .map(|i| {
                let v = (offset + i) as f64;
                HdPoint::new(
                    format!("p{}", offset + i),
                    vec![v * 0.31 % 7.0, v * 0.17 % 3.0],
                )
            })
            .collect()
    }

    fn frame_points(n: usize) -> Vec<HdPoint> {
        (0..n)
            .map(|i| {
                let v = i as f64 / n as f64;
                HdPoint::new(format!("f{i}"), vec![v, 1.0 - v, 0.5])
            })
            .collect()
    }

    /// Drives the WM for `hours` of virtual time at the poll interval.
    fn drive(
        wm: &mut WorkflowManager<SchedEngine>,
        store: &mut dyn DataStore,
        hours: u64,
    ) -> Vec<WmEvent> {
        let mut all = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_hours(hours);
        while t <= end {
            all.extend(wm.tick(t, store));
            t += wm.cfg.poll_interval;
        }
        all
    }

    #[test]
    fn wm_fills_gpus_from_candidates() {
        let mut m = wm(2, WmConfig::test_scale()); // 12 GPUs
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(50, 0));
        m.add_frame_candidates(frame_points(50));
        let events = drive(&mut m, &mut store, 2);

        let stats = m.stats();
        assert!(stats.cg_selected > 0, "patches were selected");
        assert!(stats.aa_selected > 0, "frames were selected");
        assert!(stats.cg_sims_started > 0, "CG sims started");
        assert!(stats.aa_sims_started > 0, "AA sims started");
        // GPU partition respected: at most 8 CG (70% of 12) at once.
        let (cg_run, _) = m.launcher().class_counts(JobClass::CgSim);
        assert!(cg_run <= 8, "CG target respected: {cg_run}");
        assert!(events
            .iter()
            .any(|e| matches!(e, WmEvent::CgSetupDone { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, WmEvent::CgSimStarted { .. })));
    }

    #[test]
    fn sims_complete_and_are_replaced() {
        let mut cfg = WmConfig::test_scale();
        cfg.cg_sim_runtime = SimDuration::from_mins(10);
        let mut m = wm(1, cfg);
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(100, 0));
        drive(&mut m, &mut store, 6);
        let stats = m.stats();
        assert!(stats.cg_sims_completed >= 3, "turnover expected: {stats:?}");
        assert!(stats.cg_sims_started > stats.cg_sims_completed.saturating_sub(1));
    }

    #[test]
    fn feedback_runs_on_cadence_and_reports() {
        let mut m = wm(1, WmConfig::test_scale());
        let mut store = KvDataStore::new(4);
        // Plant feedback data.
        let frame = cg::analysis::CgFrame {
            id: "s:f0".into(),
            time: 0.0,
            encoding: [0.2, 0.4, 0.6],
            rdfs: vec![vec![2.0; 10], vec![0.5; 10]],
        };
        store
            .write(crate::ns::RDF_NEW, &frame.id, &frame.encode())
            .unwrap();
        let events = drive(&mut m, &mut store, 1);
        assert!(m.stats().feedback_iterations >= 2);
        assert!(events
            .iter()
            .any(|e| matches!(e, WmEvent::CouplingUpdated(_))));
        assert_eq!(store.count(crate::ns::RDF_NEW).unwrap(), 0);
    }

    #[test]
    fn failed_jobs_are_resubmitted() {
        let mut cfg = WmConfig::test_scale();
        cfg.job_failure_prob = 0.5;
        cfg.cg_sim_runtime = SimDuration::from_mins(5);
        let mut m = wm(1, cfg);
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(100, 0));
        let events = drive(&mut m, &mut store, 4);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, WmEvent::JobResubmitted { .. })),
            "with 50% failures some resubmissions must occur"
        );
    }

    #[test]
    fn permanently_failing_jobs_are_given_up_not_looped() {
        // Every job fails; with a budget of 1 resubmit per payload the WM
        // must abandon each payload after 2 attempts instead of
        // resubmitting forever.
        let mut cfg = WmConfig::test_scale();
        cfg.job_failure_prob = 1.0;
        cfg.max_resubmits = 1;
        cfg.cg_setup_runtime = SimDuration::from_mins(2);
        let mut m = wm(1, cfg);
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(6, 0));
        let events = drive(&mut m, &mut store, 8);
        let abandoned = events
            .iter()
            .filter(|e| matches!(e, WmEvent::JobAbandoned { .. }))
            .count();
        assert!(abandoned > 0, "doomed payloads must be abandoned");
        assert_eq!(m.stats().jobs_abandoned, abandoned as u64);
        // Bounded submissions: each payload gets at most 2 attempts, and
        // the selector holds only the 6 candidates we planted (plus any
        // setup still in flight when time ran out).
        let totals = m.tracker_totals();
        assert!(
            totals.submitted <= 2 * 6,
            "submissions must be bounded by the budget: {totals:?}"
        );
        assert_eq!(m.stats().cg_sims_started, 0, "nothing ever sets up");
    }

    #[test]
    fn hang_watchdog_recovers_stuck_sims() {
        let mut cfg = WmConfig::test_scale();
        cfg.job_timeout_grace = 1.5;
        cfg.cg_sim_runtime = SimDuration::from_mins(10);
        let mut m = wm(1, cfg);
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(30, 0));
        // Warm up until sims are running, then hang one.
        let mut t = SimTime::ZERO;
        while m.launcher().class_counts(JobClass::CgSim).0 == 0 {
            t += m.cfg.poll_interval;
            m.tick(t, &mut store);
            assert!(t < SimTime::from_hours(4), "sims never started");
        }
        m.launcher_mut().hang_running(JobClass::CgSim, t);
        // Drive long past the grace window; the watchdog must reclaim the
        // GPU and the workflow must keep completing sims.
        let end = t + SimDuration::from_hours(3);
        while t < end {
            t += m.cfg.poll_interval;
            m.tick(t, &mut store);
        }
        assert!(m.stats().jobs_timed_out >= 1, "watchdog fired");
        assert!(
            m.stats().cg_sims_completed > 0,
            "workflow kept making progress: {:?}",
            m.stats()
        );
    }

    #[test]
    fn profiler_records_occupancy_samples() {
        let mut m = wm(2, WmConfig::test_scale());
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(80, 0));
        m.add_frame_candidates(frame_points(80));
        drive(&mut m, &mut store, 2);
        assert!(m.profiler().samples().len() >= 20);
        // Once warmed up, the GPU occupancy should be substantial.
        let late: Vec<f64> = m.profiler().gpu_series().into_iter().skip(12).collect();
        let mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        assert!(mean > 50.0, "late GPU occupancy should be high: {mean:.1}%");
        assert!(!m.cg_timeline().points().is_empty());
    }

    #[test]
    fn buffers_respect_configured_targets() {
        let mut cfg = WmConfig::test_scale();
        cfg.cg_ready_buffer = 3;
        let mut m = wm(1, cfg);
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(100, 0));
        m.tick(SimTime::ZERO, &mut store);
        // In-flight setups never exceed the buffer target.
        let (r, p) = m.launcher().class_counts(JobClass::CgSetup);
        assert!(r + p <= 3, "setup in-flight {r}+{p} exceeds buffer");
    }

    #[test]
    fn checkpoint_roundtrip_restores_state() {
        let mut m = wm(1, WmConfig::test_scale());
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(30, 0));
        drive(&mut m, &mut store, 1);
        let ckpt = m.checkpoint();
        let text = ckpt.to_text();
        let parsed = WmCheckpoint::from_text(&text).unwrap();
        assert_eq!(parsed, ckpt);

        let mut fresh = wm(1, WmConfig::test_scale());
        fresh.restore(&parsed);
        assert_eq!(fresh.stats(), m.stats());
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(matches!(
            WmCheckpoint::from_text("bogus line"),
            Err(CheckpointError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            WmCheckpoint::from_text("stats 1 2"),
            Err(CheckpointError::BadLine { line: 1, .. })
        ));
    }

    /// A non-trivial checkpoint to corrupt: live buffers + histories.
    fn populated_checkpoint() -> WmCheckpoint {
        let mut m = wm(1, WmConfig::test_scale());
        let mut store = KvDataStore::new(4);
        m.add_patch_candidates(patch_points(30, 0));
        drive(&mut m, &mut store, 1);
        let ckpt = m.checkpoint();
        assert!(!ckpt.patch_history.is_empty(), "want history to corrupt");
        ckpt
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let text = populated_checkpoint().to_text();
        // Drop the footer: the file looks complete but is not verifiable.
        let without_footer: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
        assert_eq!(
            WmCheckpoint::from_text(&(without_footer.join("\n") + "\n")).unwrap_err(),
            CheckpointError::MissingFooter
        );
        // Drop a body line but keep the footer: the count disagrees.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        assert!(matches!(
            WmCheckpoint::from_text(&(lines.join("\n") + "\n")).unwrap_err(),
            CheckpointError::CountMismatch { .. }
        ));
    }

    #[test]
    fn duplicated_stats_section_is_rejected() {
        let text = populated_checkpoint().to_text();
        let stats_line = text.lines().next().unwrap();
        let doubled = format!("{stats_line}\n{text}");
        assert!(matches!(
            WmCheckpoint::from_text(&doubled).unwrap_err(),
            CheckpointError::DuplicateStats { line: 2 }
        ));
    }

    #[test]
    fn unknown_field_names_the_offending_line() {
        let text = populated_checkpoint().to_text();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines.insert(2, "zz mystery".to_string());
        match WmCheckpoint::from_text(&(lines.join("\n") + "\n")).unwrap_err() {
            CheckpointError::BadLine {
                line,
                content,
                reason,
            } => {
                assert_eq!(line, 3);
                assert_eq!(content, "zz mystery");
                assert!(reason.contains("unknown"), "reason: {reason}");
            }
            e => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn corrupt_history_record_is_rejected() {
        let text = populated_checkpoint().to_text();
        let corrupted = text.replacen("ph A ", "ph Q ", 1);
        assert_ne!(corrupted, text, "expected an add record to corrupt");
        assert!(matches!(
            WmCheckpoint::from_text(&corrupted).unwrap_err(),
            CheckpointError::BadLine { .. }
        ));
    }

    #[test]
    fn no_candidates_means_no_jobs() {
        let mut m = wm(1, WmConfig::test_scale());
        let mut store = KvDataStore::new(4);
        drive(&mut m, &mut store, 1);
        assert_eq!(m.stats().cg_sims_started, 0);
        assert_eq!(m.stats().cg_selected, 0);
    }
}
