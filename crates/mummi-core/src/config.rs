//! Workflow-manager configuration.

use simcore::SimDuration;

/// Tunables of the workflow manager.
///
/// These are the knobs §4.4 describes as user-configurable: the resource
/// split across scales, the prepared-simulation buffers ("sets of CG and AA
/// simulations are kept prepared in anticipation … a trade-off between
/// readiness for availability of resources and simulating stale
/// configurations"), the polling cadence, and the feedback interval.
#[derive(Debug, Clone)]
pub struct WmConfig {
    /// Fraction of GPUs dedicated to CG simulations ("a typical run used
    /// 60%–80% of the total GPUs for CG whereas the remaining were
    /// assigned to AA").
    pub cg_gpu_fraction: f64,
    /// Prepared-but-not-running CG systems to keep buffered.
    pub cg_ready_buffer: usize,
    /// Prepared-but-not-running AA systems to keep buffered.
    pub aa_ready_buffer: usize,
    /// How often the WM scans jobs and replaces finished ones.
    pub poll_interval: SimDuration,
    /// How often a feedback iteration runs (target <10 min per iteration).
    pub feedback_interval: SimDuration,
    /// How often the profiler samples occupancy (the paper used 10 min).
    pub profile_interval: SimDuration,
    /// Submission throttle (jobs/minute; the campaign used ~100).
    pub submit_rate_per_min: u64,
    /// Target virtual runtime of one CG simulation.
    pub cg_sim_runtime: SimDuration,
    /// Target virtual runtime of one AA simulation.
    pub aa_sim_runtime: SimDuration,
    /// Virtual runtime of a createsim job (~1.5 h in the campaign).
    pub cg_setup_runtime: SimDuration,
    /// Virtual runtime of a backmapping job (~2 h in the campaign).
    pub aa_setup_runtime: SimDuration,
    /// Probability that any job fails and must be resubmitted.
    pub job_failure_prob: f64,
    /// Resubmission budget per payload (failures and timeouts both spend
    /// it); beyond it the payload is abandoned with a terminal
    /// `wm.gave_up` event instead of looping forever.
    pub max_resubmits: u32,
    /// Job-timeout watchdog: a placed job that has run longer than this
    /// multiple of its submitted runtime is presumed hung, canceled, and
    /// resubmitted (§4.4 "jobs may hang"). `0.0` disables the watchdog.
    /// Use a value `> 1` so healthy jobs always finish first.
    pub job_timeout_grace: f64,
    /// Record selector mutation histories for exact replay on restart
    /// (§4.4). Costs memory proportional to live candidates; large
    /// campaign simulations that manage restart state themselves turn
    /// this off.
    pub record_history: bool,
    /// Benchmarking escape hatch: answer tracker watchdog queries with
    /// the retired O(live) table scans instead of the deadline index.
    /// Identical results, pre-index wall-clock cost — the scale ladder's
    /// "pre-change engine" baseline.
    pub linear_scan: bool,
    /// Root seed for the WM's stochastic components.
    pub seed: u64,
}

impl Default for WmConfig {
    fn default() -> Self {
        WmConfig {
            cg_gpu_fraction: 0.7,
            cg_ready_buffer: 16,
            aa_ready_buffer: 8,
            poll_interval: SimDuration::from_mins(2),
            feedback_interval: SimDuration::from_mins(10),
            profile_interval: SimDuration::from_mins(10),
            submit_rate_per_min: 100,
            cg_sim_runtime: SimDuration::from_hours(24),
            aa_sim_runtime: SimDuration::from_hours(24),
            cg_setup_runtime: SimDuration::from_mins(90),
            aa_setup_runtime: SimDuration::from_mins(120),
            job_failure_prob: 0.01,
            max_resubmits: 3,
            job_timeout_grace: 0.0,
            record_history: true,
            linear_scan: false,
            seed: 1,
        }
    }
}

impl WmConfig {
    /// A configuration shrunk for fast tests: minutes-scale jobs, small
    /// buffers, frequent polling.
    pub fn test_scale() -> WmConfig {
        WmConfig {
            cg_gpu_fraction: 0.7,
            cg_ready_buffer: 4,
            aa_ready_buffer: 2,
            poll_interval: SimDuration::from_secs(30),
            feedback_interval: SimDuration::from_mins(5),
            profile_interval: SimDuration::from_mins(5),
            submit_rate_per_min: 600,
            cg_sim_runtime: SimDuration::from_mins(30),
            aa_sim_runtime: SimDuration::from_mins(20),
            cg_setup_runtime: SimDuration::from_mins(5),
            aa_setup_runtime: SimDuration::from_mins(8),
            job_failure_prob: 0.0,
            max_resubmits: 3,
            job_timeout_grace: 0.0,
            record_history: true,
            linear_scan: false,
            seed: 7,
        }
    }

    /// GPU targets (cg, aa) for a machine with `total_gpus`.
    pub fn gpu_targets(&self, total_gpus: u64) -> (u64, u64) {
        let cg = (total_gpus as f64 * self.cg_gpu_fraction).round() as u64;
        (cg.min(total_gpus), total_gpus - cg.min(total_gpus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_split_covers_all_gpus() {
        let cfg = WmConfig::default();
        let (cg, aa) = cfg.gpu_targets(6000);
        assert_eq!(cg + aa, 6000);
        assert_eq!(cg, 4200);
    }

    #[test]
    fn extreme_fractions_clamp() {
        let cfg = WmConfig {
            cg_gpu_fraction: 1.5,
            ..WmConfig::default()
        };
        let (cg, aa) = cfg.gpu_targets(100);
        assert_eq!((cg, aa), (100, 0));
    }
}
